#include "batch/batch.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "synth/symbolic_engine.hpp"
#include "synth/synthesizer.hpp"
#include "util/diagnostics.hpp"

namespace speccc::batch {

const char* status_name(TaskStatus status) {
  switch (status) {
    case TaskStatus::kConsistent: return "consistent";
    case TaskStatus::kInconsistent: return "inconsistent";
    case TaskStatus::kError: return "error";
    case TaskStatus::kBudgetExhausted: return "budget-exhausted";
    case TaskStatus::kCancelled: return "cancelled";
  }
  return "?";
}

namespace {

const char* realizability_name(synth::Realizability r) {
  switch (r) {
    case synth::Realizability::kRealizable: return "realizable";
    case synth::Realizability::kUnrealizable: return "unrealizable";
    case synth::Realizability::kUnknown: return "unknown";
  }
  return "?";
}

/// Per-task budget state read by the worker pipeline's cancelled functor.
/// Lives in a shared_ptr because PipelineOptions copies the functor into
/// the worker's long-lived Pipeline while the worker resets the state
/// between tasks.
struct BudgetState {
  util::Stopwatch clock;
  double budget_seconds = 0.0;
  const std::atomic<bool>* cancel = nullptr;

  [[nodiscard]] bool externally_cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool expired() const {
    return (budget_seconds > 0.0 && clock.seconds() > budget_seconds) ||
           externally_cancelled();
  }
};

/// Work-stealing deques: round-robin dealt; the owner pops from the front
/// (input order -- a one-worker batch is exactly the sequential loop) and
/// thieves steal from the back, the tasks the owner would reach last.
/// Tasks are all known upfront and never re-queued, so a worker may exit
/// as soon as every deque is empty (in-flight tasks belong to their
/// workers). A small per-deque mutex is deliberate: task granularity is a
/// whole pipeline run (milliseconds to seconds), so queue contention is
/// noise and a lock-free Chase-Lev deque would buy nothing but risk.
class StealingQueues {
 public:
  StealingQueues(std::size_t workers, std::size_t tasks) : queues_(workers) {
    for (std::size_t t = 0; t < tasks; ++t) {
      queues_[t % workers].items.push_back(t);
    }
  }

  /// Next task for `self`: own deque first, then steal. Returns false when
  /// every deque is empty.
  bool next(std::size_t self, std::size_t& out, std::size_t& steals) {
    {
      Queue& own = queues_[self];
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.items.empty()) {
        out = own.items.front();
        own.items.pop_front();
        return true;
      }
    }
    for (std::size_t i = 1; i < queues_.size(); ++i) {
      Queue& victim = queues_[(self + i) % queues_.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.items.empty()) {
        out = victim.items.back();
        victim.items.pop_back();
        ++steals;
        return true;
      }
    }
    return false;
  }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::size_t> items;
  };
  std::vector<Queue> queues_;
};

/// Opposite-definite-verdict cross-check of one already-translated spec:
/// every registered substrate re-decides it independently (the batch
/// counterpart of the difftest oracle). Inapplicable substrates --
/// symbolic outside its fragment, bounded beyond the alphabet cap --
/// abstain with kUnknown, which never counts as disagreement.
AgreementStats check_substrates(const core::PipelineResult& pipeline_result,
                                const synth::BoundedOptions& bounded_options) {
  AgreementStats stats;
  stats.checked = true;

  const std::vector<ltl::Formula> formulas =
      pipeline_result.translation.formulas();
  synth::IoSignature signature;
  signature.inputs.assign(pipeline_result.partition.inputs.begin(),
                          pipeline_result.partition.inputs.end());
  signature.outputs.assign(pipeline_result.partition.outputs.begin(),
                           pipeline_result.partition.outputs.end());

  synth::SynthesisOptions options;
  options.bounded = bounded_options;

  const core::SubstrateRegistry& registry = core::SubstrateRegistry::global();
  for (const std::string& name : registry.names()) {
    const core::Substrate* substrate = registry.find(name);
    synth::Realizability verdict = synth::Realizability::kUnknown;
    try {
      verdict = substrate->check(formulas, signature, options, {}).verdict;
    } catch (const util::SpecError&) {
      // Inapplicable: the substrate abstains.
    }
    stats.verdicts.emplace_back(name, verdict);
  }
  return stats;
}

}  // namespace

struct TaskRunner::Impl {
  int id;
  RunnerOptions options;
  std::shared_ptr<BudgetState> budget;
  std::unique_ptr<core::Pipeline> pipeline;
};

TaskRunner::TaskRunner(int worker_id, const RunnerOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->id = worker_id;
  impl_->options = options;
  impl_->budget = std::make_shared<BudgetState>();

  core::PipelineOptions pipeline_options = options.pipeline;
  const std::shared_ptr<BudgetState> budget = impl_->budget;
  pipeline_options.cancelled = [budget] { return budget->expired(); };
  impl_->pipeline = std::make_unique<core::Pipeline>(std::move(pipeline_options));
}

TaskRunner::~TaskRunner() = default;

TaskResult TaskRunner::run(const SpecTask& task, const RunLimits& limits) {
  BudgetState& budget = *impl_->budget;
  budget.budget_seconds = limits.budget_seconds;
  budget.cancel = limits.cancel;

  TaskResult result;
  result.name = task.name;
  result.worker = impl_->id;

  if (budget.externally_cancelled()) {
    result.status = TaskStatus::kCancelled;
    result.detail = "cancelled before the task started";
    return result;
  }

  const bool track_cache = impl_->options.pipeline.cache != nullptr;
  const cache::StatsSnapshot cache_before =
      track_cache ? cache::Store::thread_stats() : cache::StatsSnapshot{};

  budget.clock.reset();
  util::Stopwatch task_clock;
  try {
    const core::PipelineResult pipeline_result =
        impl_->pipeline->run(task.name, task.requirements, limits.substrate);
    result.status = pipeline_result.consistent ? TaskStatus::kConsistent
                                               : TaskStatus::kInconsistent;
    result.formulas = pipeline_result.num_formulas();
    result.inputs = pipeline_result.num_inputs();
    result.outputs = pipeline_result.num_outputs();
    result.refined = pipeline_result.refinement.has_value() &&
                     pipeline_result.refinement->consistent;
    result.unsatisfiable_requirements =
        pipeline_result.unsatisfiable_requirements;
    if (pipeline_result.refinement.has_value()) {
      // Map localization indices onto requirement ids: the diagnosis the
      // user reads names sentences, not positions.
      const auto& requirements = pipeline_result.translation.requirements;
      const auto id_of = [&requirements](std::size_t i) {
        return i < requirements.size() ? requirements[i].id
                                       : "#" + std::to_string(i);
      };
      const refine::Localization& loc =
          pipeline_result.refinement->localization;
      for (std::size_t i : loc.core) result.mus.push_back(id_of(i));
      for (const auto& mcs : loc.correction_sets) {
        std::vector<std::string> ids;
        ids.reserve(mcs.size());
        for (std::size_t i : mcs) ids.push_back(id_of(i));
        result.correction_sets.push_back(std::move(ids));
      }
    }
    result.translation_seconds = pipeline_result.translation_seconds;
    result.synthesis_seconds = pipeline_result.synthesis_seconds;
    result.refinement_seconds = pipeline_result.refinement_seconds;
    if (pipeline_result.synthesis.engine_used == synth::Engine::kSymbolic) {
      result.bdd = pipeline_result.synthesis.bdd_stats;
    }
    result.substrate = pipeline_result.synthesis.substrate_used;
    result.portfolio = pipeline_result.portfolio;
    if (impl_->options.check_agreement) {
      result.agreement =
          check_substrates(pipeline_result, impl_->options.agreement_bounded);
    }
  } catch (const util::CancelledError& e) {
    result.status = budget.externally_cancelled() ? TaskStatus::kCancelled
                                                  : TaskStatus::kBudgetExhausted;
    result.detail = e.what();
  } catch (const std::exception& e) {
    result.status = TaskStatus::kError;
    result.detail = e.what();
  }
  result.seconds = task_clock.seconds();
  if (track_cache) {
    result.cache = cache::Store::thread_stats().since(cache_before);
  }
  return result;
}

double BatchReport::cpu_seconds() const {
  double total = 0.0;
  for (const TaskResult& r : results) total += r.seconds;
  return total;
}

BatchReport check(const std::vector<SpecTask>& tasks,
                  const BatchOptions& options) {
  BatchReport report;
  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = std::min(jobs,
                  static_cast<int>(std::max<std::size_t>(tasks.size(), 1)));
  report.jobs = jobs;
  report.results.resize(tasks.size());
  report.cache_enabled = options.pipeline.cache != nullptr;
  if (tasks.empty()) return report;

  const cache::StatsSnapshot stats_before =
      report.cache_enabled ? options.pipeline.cache->stats()
                           : cache::StatsSnapshot{};

  util::Stopwatch wall;
  StealingQueues queues(static_cast<std::size_t>(jobs), tasks.size());
  std::mutex report_mutex;  // guards results slots' publication + on_result
  std::atomic<std::size_t> total_steals{0};

  RunnerOptions runner_options;
  runner_options.pipeline = options.pipeline;
  runner_options.check_agreement = options.check_agreement;
  runner_options.agreement_bounded = options.agreement_bounded;
  RunLimits limits;
  limits.budget_seconds = options.task_time_budget_seconds;
  limits.cancel = options.cancel;

  const auto worker_loop = [&](std::size_t worker_id) {
    TaskRunner worker(static_cast<int>(worker_id), runner_options);
    std::size_t index = 0;
    std::size_t steals = 0;
    while (queues.next(worker_id, index, steals)) {
      TaskResult result = worker.run(tasks[index], limits);
      std::lock_guard<std::mutex> lock(report_mutex);
      report.results[index] = std::move(result);
      if (options.on_result) options.on_result(report.results[index]);
    }
    total_steals.fetch_add(steals, std::memory_order_relaxed);
  };

  if (jobs == 1) {
    worker_loop(0);  // inline: keeps jobs=1 usable under thread-less debuggers
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      threads.emplace_back(worker_loop, static_cast<std::size_t>(w));
    }
    for (std::thread& t : threads) t.join();
  }

  report.wall_seconds = wall.seconds();
  report.steals = total_steals.load();
  if (report.cache_enabled) {
    report.cache_stats = options.pipeline.cache->stats().since(stats_before);
  }
  for (const TaskResult& r : report.results) {
    switch (r.status) {
      case TaskStatus::kConsistent: ++report.consistent; break;
      case TaskStatus::kInconsistent: ++report.inconsistent; break;
      case TaskStatus::kError: ++report.errors; break;
      case TaskStatus::kBudgetExhausted: ++report.budget_exhausted; break;
      case TaskStatus::kCancelled: ++report.cancelled; break;
    }
    if (r.agreement.checked && !r.agreement.agree()) ++report.disagreements;
    if (r.bdd.peak_nodes > 0) {
      ++report.bdd.tasks;
      report.bdd.peak_nodes_max =
          std::max(report.bdd.peak_nodes_max, r.bdd.peak_nodes);
      report.bdd.unique_hits += r.bdd.unique_hits;
      report.bdd.cache_hits += r.bdd.cache_hits;
      report.bdd.cache_misses += r.bdd.cache_misses;
      report.bdd.cache_evictions += r.bdd.cache_evictions;
    }
  }
  return report;
}

namespace {

void canonical_result(std::ostream& os, const TaskResult& r) {
  os << r.name << " status=" << status_name(r.status) << " formulas="
     << r.formulas << " in=" << r.inputs << " out=" << r.outputs
     << " refined=" << (r.refined ? 1 : 0);
  if (!r.unsatisfiable_requirements.empty()) {
    os << " unsat=";
    for (std::size_t i = 0; i < r.unsatisfiable_requirements.size(); ++i) {
      if (i > 0) os << ',';
      os << r.unsatisfiable_requirements[i];
    }
  }
  // The diagnosis is input-pure (a function of the spec and the pipeline
  // options alone), so unlike cache/bdd statistics it belongs to the
  // canonical contract: byte-identical for any jobs count and cache mode.
  if (!r.mus.empty()) {
    os << " mus=";
    for (std::size_t i = 0; i < r.mus.size(); ++i) {
      if (i > 0) os << ',';
      os << r.mus[i];
    }
  }
  if (!r.correction_sets.empty()) {
    os << " mcs=";
    for (std::size_t s = 0; s < r.correction_sets.size(); ++s) {
      if (s > 0) os << ';';
      for (std::size_t i = 0; i < r.correction_sets[s].size(); ++i) {
        if (i > 0) os << ',';
        os << r.correction_sets[s][i];
      }
    }
  }
  if (r.agreement.checked) {
    // One verdict per registered substrate, registry order: input-pure
    // (every substrate's caps are deterministic), hence canonical.
    for (const auto& entry : r.agreement.verdicts) {
      os << ' ' << entry.first << '=' << realizability_name(entry.second);
    }
    os << " agree=" << (r.agreement.agree() ? 1 : 0);
  }
  if (r.status == TaskStatus::kError) os << " detail=" << r.detail;
  os << '\n';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string canonical(const BatchReport& report) {
  std::ostringstream os;
  for (const TaskResult& r : report.results) canonical_result(os, r);
  return os.str();
}

std::string canonical_line(const TaskResult& result) {
  std::ostringstream os;
  canonical_result(os, result);
  return os.str();
}

std::string to_json(const BatchReport& report) {
  std::ostringstream os;
  os << "{\n  \"jobs\": " << report.jobs
     << ",\n  \"wall_seconds\": " << report.wall_seconds
     << ",\n  \"cpu_seconds\": " << report.cpu_seconds()
     << ",\n  \"steals\": " << report.steals
     << ",\n  \"consistent\": " << report.consistent
     << ",\n  \"inconsistent\": " << report.inconsistent
     << ",\n  \"errors\": " << report.errors
     << ",\n  \"budget_exhausted\": " << report.budget_exhausted
     << ",\n  \"cancelled\": " << report.cancelled
     << ",\n  \"disagreements\": " << report.disagreements;
  if (report.cache_enabled) {
    const cache::StatsSnapshot& c = report.cache_stats;
    os << ",\n  \"cache\": {\"l1_hits\": " << c.l1_hits
       << ", \"l1_misses\": " << c.l1_misses << ", \"l2_hits\": " << c.l2_hits
       << ", \"l2_misses\": " << c.l2_misses
       << ", \"evictions\": " << c.evictions << "}";
  }
  if (report.bdd.tasks > 0) {
    const BddAggregate& b = report.bdd;
    os << ",\n  \"bdd\": {\"tasks\": " << b.tasks
       << ", \"peak_nodes_max\": " << b.peak_nodes_max
       << ", \"unique_hits\": " << b.unique_hits
       << ", \"cache_hits\": " << b.cache_hits
       << ", \"cache_misses\": " << b.cache_misses
       << ", \"cache_evictions\": " << b.cache_evictions << "}";
  }
  os << ",\n  \"specs\": [\n";
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const TaskResult& r = report.results[i];
    os << "    {\"name\": \"" << json_escape(r.name) << "\", \"status\": \""
       << status_name(r.status) << "\", \"formulas\": " << r.formulas
       << ", \"inputs\": " << r.inputs << ", \"outputs\": " << r.outputs
       << ", \"refined\": " << (r.refined ? "true" : "false")
       << ", \"seconds\": " << r.seconds << ", \"worker\": " << r.worker;
    if (!r.mus.empty()) {
      os << ", \"mus\": [";
      for (std::size_t k = 0; k < r.mus.size(); ++k) {
        os << (k > 0 ? ", " : "") << "\"" << json_escape(r.mus[k]) << "\"";
      }
      os << "]";
    }
    if (!r.correction_sets.empty()) {
      os << ", \"correction_sets\": [";
      for (std::size_t s = 0; s < r.correction_sets.size(); ++s) {
        os << (s > 0 ? ", " : "") << "[";
        for (std::size_t k = 0; k < r.correction_sets[s].size(); ++k) {
          os << (k > 0 ? ", " : "") << "\""
             << json_escape(r.correction_sets[s][k]) << "\"";
        }
        os << "]";
      }
      os << "]";
    }
    if (r.bdd.peak_nodes > 0) {
      os << ", \"bdd_peak_nodes\": " << r.bdd.peak_nodes
         << ", \"bdd_cache_hits\": " << r.bdd.cache_hits
         << ", \"bdd_cache_misses\": " << r.bdd.cache_misses;
    }
    if (!r.substrate.empty()) {
      os << ", \"substrate\": \"" << json_escape(r.substrate) << "\"";
    }
    if (r.portfolio.has_value()) {
      os << ", \"won\": \"" << json_escape(r.portfolio->winner)
         << "\", \"substrates\": [";
      for (std::size_t k = 0; k < r.portfolio->runs.size(); ++k) {
        const core::SubstrateRunStats& run = r.portfolio->runs[k];
        os << (k > 0 ? ", " : "") << "{\"name\": \"" << json_escape(run.name)
           << "\", \"verdict\": \"" << realizability_name(run.verdict)
           << "\", \"seconds\": " << run.wall_seconds
           << ", \"won\": " << (run.won ? "true" : "false")
           << ", \"cancelled\": " << (run.cancelled ? "true" : "false");
        if (!run.error.empty()) {
          os << ", \"error\": \"" << json_escape(run.error) << "\"";
        }
        os << "}";
      }
      os << "]";
    }
    if (r.agreement.checked) {
      for (const auto& entry : r.agreement.verdicts) {
        os << ", \"" << json_escape(entry.first) << "\": \""
           << realizability_name(entry.second) << "\"";
      }
      os << ", \"agree\": " << (r.agreement.agree() ? "true" : "false");
    }
    if (!r.detail.empty()) {
      os << ", \"detail\": \"" << json_escape(r.detail) << "\"";
    }
    os << "}" << (i + 1 < report.results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void print_summary(std::ostream& os, const BatchReport& report) {
  for (const TaskResult& r : report.results) {
    os << "  " << r.name << ": " << status_name(r.status);
    if (r.status == TaskStatus::kConsistent ||
        r.status == TaskStatus::kInconsistent) {
      os << " (" << r.formulas << " formulas, " << r.inputs << " in, "
         << r.outputs << " out";
      if (r.refined) os << ", refined";
      os << ", " << r.seconds << "s";
      if (r.portfolio.has_value() && !r.portfolio->winner.empty()) {
        os << ", " << r.portfolio->winner << " won";
      } else if (!r.substrate.empty()) {
        os << ", " << r.substrate;
      }
      os << ")";
      if (!r.mus.empty()) {
        os << "\n    conflicting sentences:";
        for (const std::string& id : r.mus) os << " " << id;
      }
      for (const auto& mcs : r.correction_sets) {
        os << "\n    fix by removing:";
        for (const std::string& id : mcs) os << " " << id;
      }
    } else if (!r.detail.empty()) {
      os << " (" << r.detail << ")";
    }
    if (r.agreement.checked && !r.agreement.agree()) {
      os << "  SUBSTRATE DISAGREEMENT";
    }
    os << "\n";
  }
  os << report.results.size() << " specs with " << report.jobs << " jobs in "
     << report.wall_seconds << "s wall (" << report.cpu_seconds()
     << "s cpu, " << report.steals << " steals): " << report.consistent
     << " consistent, " << report.inconsistent << " inconsistent, "
     << report.errors << " errors, " << report.budget_exhausted
     << " budget-exhausted, " << report.cancelled << " cancelled";
  if (report.disagreements > 0) {
    os << ", " << report.disagreements << " SUBSTRATE DISAGREEMENTS";
  }
  os << "\n";
  if (report.cache_enabled) cache::print_stats(os, report.cache_stats);
  if (report.bdd.tasks > 0) {
    const BddAggregate& b = report.bdd;
    os << "bdd engine: " << b.tasks << " symbolic tasks, peak "
       << b.peak_nodes_max << " nodes, " << b.unique_hits << " unique hits, "
       << b.cache_hits << " cache hits / " << b.cache_misses << " misses / "
       << b.cache_evictions << " evictions\n";
  }
}

}  // namespace speccc::batch
