// The three Table I corpora (paper Section VI) packaged as batch tasks, so
// the parallel checker reproduces the paper's evaluation with one call.
// Lives in batch/ (not corpus/) to keep the dependency arrow pointing from
// the scheduler to the corpora.
#pragma once

#include <vector>

#include "batch/batch.hpp"

namespace speccc::batch {

/// CARA infusion pump: working mode (row 0) + the 13 component rows.
[[nodiscard]] std::vector<SpecTask> cara_tasks();

/// The five TELEPROMISE application specifications.
[[nodiscard]] std::vector<SpecTask> telepromise_tasks();

/// The three rescue-robot scenarios.
[[nodiscard]] std::vector<SpecTask> robot_tasks();

/// All 22 Table I rows, CARA then TELE then Robot (the paper's order).
[[nodiscard]] std::vector<SpecTask> table1_tasks();

}  // namespace speccc::batch
