#include "game/symbolic.hpp"

#include "util/diagnostics.hpp"

namespace speccc::game {

namespace {

/// Transition substitution: state variable b -> next_state[b], every other
/// variable identity. The manager interns the resolved map, so rebuilding
/// this vector every call still keys one persistent cache entry.
std::vector<bdd::Bdd> transition_map(const SymbolicGame& game) {
  bdd::Manager& mgr = *game.manager;
  std::vector<bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
  for (std::size_t b = 0; b < game.state_vars.size(); ++b) {
    map[static_cast<std::size_t>(game.state_vars[b])] = game.next_state[b];
  }
  return map;
}

}  // namespace

bdd::Bdd apply_transition(const SymbolicGame& game, bdd::Bdd target) {
  return game.manager->vector_compose(target, transition_map(game));
}

bdd::Bdd cpre(const SymbolicGame& game, bdd::Bdd target) {
  bdd::Manager& mgr = *game.manager;
  // One fused pass: substitute the transition functions into the target and
  // run the relational product exists o. (safe && T∘f) without ever
  // building the intermediate conjunction. The trailing forall over inputs
  // costs one quantification pass; its two negations are O(1) complement
  // flips. The textbook formulation (compose, and, exists, not, exists,
  // not) did three full traversals plus two linear negation passes here.
  const bdd::Bdd sys_can =
      mgr.preimage(target, transition_map(game), game.safe, game.output_vars);
  return mgr.forall(sys_can, game.input_vars);
}

SymbolicSolution solve(const SymbolicGame& game,
                       const std::function<bool()>& cancelled) {
  speccc_check(game.manager != nullptr, "game needs a manager");
  speccc_check(game.next_state.size() == game.state_vars.size(),
               "one transition function per state variable");
  bdd::Manager& mgr = *game.manager;
  const auto poll = [&cancelled]() {
    if (cancelled && cancelled()) {
      throw util::CancelledError("symbolic game solve cancelled");
    }
  };

  // The initial predicate is one minterm over the state variables, so
  // containment in the winning region (forall s. initial -> W, a fused
  // single pass collapsing to a terminal) and non-empty intersection
  // coincide.
  const auto initial_winning = [&](bdd::Bdd winning) {
    return mgr.forall_implies(game.initial, winning, game.state_vars).is_true();
  };

  SymbolicSolution solution;
  bdd::Bdd z = mgr.bdd_true();

  // Pure safety: nu Z. CPre(Z).
  if (game.buchi.empty()) {
    for (;;) {
      poll();
      ++solution.iterations;
      const bdd::Bdd next = cpre(game, z);
      // CPre is monotone and we start at true, so the sequence decreases.
      const bdd::Bdd capped = mgr.bdd_and(z, next);
      if (capped == z) break;
      z = capped;
    }
    solution.winning = z;
    solution.stages = {};
    solution.step_constraint = mgr.bdd_and(game.safe, apply_transition(game, z));
    solution.realizable = initial_winning(z);
    return solution;
  }

  // Generalized Buechi: nu Z. AND_j mu Y. CPre((F_j and CPre(Z)) or Y).
  // We keep the final mu stages for strategy extraction.
  for (;;) {
    poll();
    ++solution.iterations;
    bdd::Bdd conj = mgr.bdd_true();
    std::vector<std::vector<bdd::Bdd>> stages;
    const bdd::Bdd cpre_z = cpre(game, z);
    for (const bdd::Bdd& f : game.buchi) {
      // mu Y. CPre((F_j and CPre(Z)) or Y): the set from which the system
      // can force a visit to F_j (while being able to continue inside Z).
      const bdd::Bdd target = mgr.bdd_and(f, cpre_z);
      std::vector<bdd::Bdd> mu_stages;
      bdd::Bdd y = mgr.bdd_false();
      for (;;) {
        poll();
        const bdd::Bdd next = mgr.bdd_or(target, cpre(game, y));
        if (next == y) break;
        mu_stages.push_back(next);
        y = next;
      }
      conj = mgr.bdd_and(conj, y);
      stages.push_back(std::move(mu_stages));
    }
    if (conj == z) {
      solution.stages = std::move(stages);
      break;
    }
    z = conj;
  }

  solution.winning = z;
  solution.step_constraint = mgr.bdd_and(game.safe, apply_transition(game, z));
  solution.realizable = initial_winning(z);
  return solution;
}

}  // namespace speccc::game
