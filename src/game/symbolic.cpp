#include "game/symbolic.hpp"

#include "util/diagnostics.hpp"

namespace speccc::game {

bdd::Bdd apply_transition(const SymbolicGame& game, bdd::Bdd target) {
  bdd::Manager& mgr = *game.manager;
  std::vector<bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
  for (std::size_t b = 0; b < game.state_vars.size(); ++b) {
    map[static_cast<std::size_t>(game.state_vars[b])] = game.next_state[b];
  }
  return mgr.vector_compose(target, map);
}

bdd::Bdd cpre(const SymbolicGame& game, bdd::Bdd target) {
  bdd::Manager& mgr = *game.manager;
  const bdd::Bdd step = mgr.bdd_and(game.safe, apply_transition(game, target));
  const bdd::Bdd sys_can = mgr.exists(step, game.output_vars);
  return mgr.forall(sys_can, game.input_vars);
}

SymbolicSolution solve(const SymbolicGame& game) {
  speccc_check(game.manager != nullptr, "game needs a manager");
  speccc_check(game.next_state.size() == game.state_vars.size(),
               "one transition function per state variable");
  bdd::Manager& mgr = *game.manager;

  SymbolicSolution solution;
  bdd::Bdd z = mgr.bdd_true();

  // Pure safety: nu Z. CPre(Z).
  if (game.buchi.empty()) {
    for (;;) {
      ++solution.iterations;
      const bdd::Bdd next = cpre(game, z);
      // CPre is monotone and we start at true, so the sequence decreases.
      const bdd::Bdd capped = mgr.bdd_and(z, next);
      if (capped == z) break;
      z = capped;
    }
    solution.winning = z;
    solution.stages = {};
    solution.step_constraint = mgr.bdd_and(game.safe, apply_transition(game, z));
    solution.realizable = mgr.bdd_and(game.initial, z) != mgr.bdd_false();
    return solution;
  }

  // Generalized Buechi: nu Z. AND_j mu Y. CPre((F_j and CPre(Z)) or Y).
  // We keep the final mu stages for strategy extraction.
  for (;;) {
    ++solution.iterations;
    bdd::Bdd conj = mgr.bdd_true();
    std::vector<std::vector<bdd::Bdd>> stages;
    const bdd::Bdd cpre_z = cpre(game, z);
    for (const bdd::Bdd& f : game.buchi) {
      // mu Y. CPre((F_j and CPre(Z)) or Y): the set from which the system
      // can force a visit to F_j (while being able to continue inside Z).
      const bdd::Bdd target = mgr.bdd_and(f, cpre_z);
      std::vector<bdd::Bdd> mu_stages;
      bdd::Bdd y = mgr.bdd_false();
      for (;;) {
        const bdd::Bdd next = mgr.bdd_or(target, cpre(game, y));
        if (next == y) break;
        mu_stages.push_back(next);
        y = next;
      }
      conj = mgr.bdd_and(conj, y);
      stages.push_back(std::move(mu_stages));
    }
    if (conj == z) {
      solution.stages = std::move(stages);
      break;
    }
    z = conj;
  }

  solution.winning = z;
  solution.step_constraint = mgr.bdd_and(game.safe, apply_transition(game, z));
  solution.realizable = mgr.bdd_and(game.initial, z) != mgr.bdd_false();
  return solution;
}

}  // namespace speccc::game
