// Explicit two-player safety games.
//
// Used by the bounded-synthesis engine (paper Section V-A): positions carry
// counter functions over the UCW; the SAFE player tries to keep every
// counter bounded forever, the REACH player tries to drive the play into a
// dead (overflow) position.
//
// Both the primal game (system = SAFE, moving second within a step) and the
// dual game for unrealizability (environment = SAFE, moving first) map onto
// this arena; the builder just assigns owners accordingly.
#pragma once

#include <cstdint>
#include <vector>

namespace speccc::game {

enum class Owner : std::uint8_t { kSafe, kReach };

struct Arena {
  std::vector<Owner> owner;              // per position
  std::vector<std::vector<int>> moves;   // per position
  std::vector<bool> dead;                // REACH wins if the play gets here
  int initial = 0;

  int add_position(Owner o, bool is_dead = false) {
    owner.push_back(o);
    moves.emplace_back();
    dead.push_back(is_dead);
    return static_cast<int>(owner.size()) - 1;
  }
  void add_move(int from, int to) { moves[static_cast<std::size_t>(from)].push_back(to); }
  [[nodiscard]] std::size_t size() const { return owner.size(); }
};

struct SafetyResult {
  /// Positions from which the SAFE player avoids dead positions forever.
  /// A position with no moves loses for its owner (a stuck SAFE player has
  /// no safe continuation; a stuck REACH player can no longer do harm).
  std::vector<bool> safe_wins;

  [[nodiscard]] bool initial_safe(const Arena& arena) const {
    return safe_wins[static_cast<std::size_t>(arena.initial)];
  }
};

/// Backward-attractor solution, linear in the number of moves.
[[nodiscard]] SafetyResult solve(const Arena& arena);

}  // namespace speccc::game
