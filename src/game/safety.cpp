#include "game/safety.hpp"

#include <algorithm>

#include "util/diagnostics.hpp"

namespace speccc::game {

SafetyResult solve(const Arena& arena) {
  const std::size_t n = arena.size();
  speccc_check(arena.owner.size() == n && arena.moves.size() == n &&
                   arena.dead.size() == n,
               "inconsistent arena");

  // Deduplicate move targets so the escape counters stay accurate.
  std::vector<std::vector<int>> moves(n);
  for (std::size_t p = 0; p < n; ++p) {
    moves[p] = arena.moves[p];
    std::sort(moves[p].begin(), moves[p].end());
    moves[p].erase(std::unique(moves[p].begin(), moves[p].end()), moves[p].end());
  }

  std::vector<std::vector<int>> preds(n);
  for (std::size_t p = 0; p < n; ++p) {
    for (int q : moves[p]) {
      preds[static_cast<std::size_t>(q)].push_back(static_cast<int>(p));
    }
  }

  std::vector<bool> lost(n, false);
  std::vector<std::size_t> safe_escapes(n, 0);
  std::vector<int> work;

  for (std::size_t p = 0; p < n; ++p) {
    safe_escapes[p] = moves[p].size();
    if (arena.dead[p]) {
      lost[p] = true;
      work.push_back(static_cast<int>(p));
    } else if (arena.owner[p] == Owner::kSafe && moves[p].empty()) {
      lost[p] = true;  // stuck SAFE player
      work.push_back(static_cast<int>(p));
    }
  }

  while (!work.empty()) {
    const int q = work.back();
    work.pop_back();
    for (int p : preds[static_cast<std::size_t>(q)]) {
      const auto pi = static_cast<std::size_t>(p);
      if (lost[pi]) continue;
      if (arena.owner[pi] == Owner::kReach) {
        lost[pi] = true;  // REACH picks the move into the attractor
        work.push_back(p);
      } else {
        speccc_check(safe_escapes[pi] > 0, "escape counter underflow");
        if (--safe_escapes[pi] == 0) {
          lost[pi] = true;  // every SAFE move falls into the attractor
          work.push_back(p);
        }
      }
    }
  }

  SafetyResult out;
  out.safe_wins.resize(n);
  for (std::size_t p = 0; p < n; ++p) out.safe_wins[p] = !lost[p];
  return out;
}

}  // namespace speccc::game
