// Symbolic generalized-Buechi games over deterministic transition functions.
//
// This is the engine room of the scalable consistency check: a translated
// specification compiles to a conjunction of small deterministic monitors
// (see synth::MonitorCompiler). Their composition is a game
//
//   state s  --(env picks inputs i, system picks outputs o)-->  s' = f(s,i,o)
//
// where the system must (a) never violate the stepwise safety constraint
// safe(s,i,o) and (b) visit every Buechi predicate F_j infinitely often.
// Everything is represented with BDDs, so 20-30 I/O variables (Table I
// scale) are unproblematic.
//
// Winning region: the standard fixpoint
//   W = nu Z . AND_j  mu Y . CPre((F_j and Z-invariant) or Y)
// with CPre(T) = forall i exists o: safe(s,i,o) and T(f(s,i,o)).
// Generalized-Buechi games are determined: if the initial state is not in W,
// the environment wins, i.e. the specification is unrealizable.
#pragma once

#include <functional>
#include <vector>

#include "bdd/bdd.hpp"

namespace speccc::game {

struct SymbolicGame {
  bdd::Manager* manager = nullptr;
  std::vector<int> input_vars;
  std::vector<int> output_vars;
  std::vector<int> state_vars;
  /// Transition function per state variable (same order as state_vars),
  /// over (state, input, output) variables.
  std::vector<bdd::Bdd> next_state;
  /// Stepwise safety constraint over (state, input, output).
  bdd::Bdd safe;
  /// Buechi predicates over state variables; may be empty (pure safety).
  std::vector<bdd::Bdd> buchi;
  /// Initial state predicate (a single minterm over state_vars).
  bdd::Bdd initial;
};

struct SymbolicSolution {
  bool realizable = false;
  /// Winning region over state variables.
  bdd::Bdd winning;
  /// For each Buechi index j, the mu-stages Y_j^0 subset Y_j^1 subset ...
  /// computed in the final nu-iteration; used for strategy extraction.
  std::vector<std::vector<bdd::Bdd>> stages;
  /// safe(s,i,o) and next state in winning region: the master constraint the
  /// strategy must satisfy each step (over state, input, output vars).
  bdd::Bdd step_constraint;
  /// Number of nu-iterations until the fixpoint stabilized (diagnostics).
  int iterations = 0;
};

/// Solve the game. The returned solution holds all BDDs needed for strategy
/// extraction (see synth::extract_mealy). `cancelled` is polled once per
/// fixpoint round (outer nu and inner mu); returning true raises
/// util::CancelledError (portfolio racers cancel losing solves here).
[[nodiscard]] SymbolicSolution solve(
    const SymbolicGame& game, const std::function<bool()>& cancelled = {});

/// Controllable predecessor of a state-set T: states where, whatever inputs
/// the environment picks, the system has outputs keeping the step safe and
/// moving into T. Computed as one fused relational-product pass
/// (bdd::Manager::preimage) followed by a single input quantification --
/// the uncontrollable-predecessor complement is an O(1) edge flip away.
[[nodiscard]] bdd::Bdd cpre(const SymbolicGame& game, bdd::Bdd target);

/// T with state variables substituted by the transition functions:
/// T(f(s,i,o)) over (state, input, output).
[[nodiscard]] bdd::Bdd apply_transition(const SymbolicGame& game, bdd::Bdd target);

}  // namespace speccc::game
