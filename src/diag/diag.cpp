#include "diag/diag.hpp"

#include <algorithm>
#include <set>

#include "util/diagnostics.hpp"

namespace speccc::diag {

namespace {

/// `sorted` minus one element, order preserved.
std::vector<std::size_t> without(const std::vector<std::size_t>& sorted,
                                 std::size_t element) {
  std::vector<std::size_t> out;
  out.reserve(sorted.size() - 1);
  for (std::size_t e : sorted) {
    if (e != element) out.push_back(e);
  }
  return out;
}

}  // namespace

std::vector<std::size_t> shrink_mus(std::vector<std::size_t> candidates,
                                    const CoreOracle& oracle,
                                    std::size_t& checks) {
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Necessity proofs survive shrinking: once candidates \ {e} tested
  // consistent, every later candidate set is a subset of it, so dropping e
  // from that too stays consistent -- e remains necessary.
  std::set<std::size_t> proven;
  for (;;) {
    const auto next = std::find_if(
        candidates.begin(), candidates.end(),
        [&proven](std::size_t e) { return proven.count(e) == 0; });
    if (next == candidates.end()) break;
    const std::size_t e = *next;
    ++checks;
    if (const auto core = oracle(without(candidates, e))) {
      // Still inconsistent without e: jump to the (possibly much smaller)
      // returned core. A sound core cannot have dropped a proven element:
      // the set minus that element is consistent, and cores are
      // inconsistent. (An empty core means even the empty set is
      // inconsistent -- hard constraints alone -- and the MUS is empty.)
      candidates = *core;
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
    } else {
      proven.insert(e);
    }
  }
  return candidates;
}

std::vector<std::vector<std::size_t>> correction_sets(
    const std::vector<std::size_t>& universe, const CoreOracle& oracle,
    std::size_t max_sets, std::size_t& checks) {
  std::vector<std::vector<std::size_t>> out;
  const std::size_t n = universe.size();
  if (n == 0 || max_sets == 0) return out;

  // One grow pass per rotation start: different starting elements reach
  // different maximal satisfiable subsets, hence different complements.
  for (std::size_t start = 0; start < n && out.size() < max_sets; ++start) {
    std::vector<std::size_t> mss;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t e = universe[(start + k) % n];
      std::vector<std::size_t> trial = mss;
      trial.insert(std::upper_bound(trial.begin(), trial.end(), e), e);
      ++checks;
      if (!oracle(trial)) mss = std::move(trial);
    }
    // The complement of a maximal satisfiable subset is a minimal
    // correction set: removing it restores consistency (the MSS is
    // consistent), and re-adding any of its elements breaks it again (the
    // grow pass tried each against a subset of the final MSS, and
    // inconsistency is upward monotone).
    std::vector<std::size_t> mcs;
    for (std::size_t e : universe) {
      if (!std::binary_search(mss.begin(), mss.end(), e)) mcs.push_back(e);
    }
    std::sort(mcs.begin(), mcs.end());
    if (!mcs.empty() &&
        std::find(out.begin(), out.end(), mcs) == out.end()) {
      out.push_back(std::move(mcs));
    }
  }

  // Canonical order: smallest repairs first, ties lexicographic.
  std::sort(out.begin(), out.end(),
            [](const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  return out;
}

Diagnosis diagnose(std::size_t num_requirements, const CoreOracle& oracle,
                   const Options& options) {
  Diagnosis diagnosis;
  std::vector<std::size_t> universe(num_requirements);
  for (std::size_t i = 0; i < num_requirements; ++i) universe[i] = i;

  ++diagnosis.checks;
  const auto core = oracle(universe);
  if (!core) return diagnosis;  // consistent: empty mus, no correction sets

  diagnosis.mus = shrink_mus(*core, oracle, diagnosis.checks);
  diagnosis.correction_sets = correction_sets(
      universe, oracle, options.max_correction_sets, diagnosis.checks);
  return diagnosis;
}

CoreOracle synthesis_oracle(std::vector<ltl::Formula> requirements,
                            synth::IoSignature signature,
                            synth::SynthesisOptions options) {
  return [requirements = std::move(requirements),
          signature = std::move(signature), options = std::move(options)](
             const std::vector<std::size_t>& subset)
             -> std::optional<std::vector<std::size_t>> {
    if (subset.empty()) return std::nullopt;  // empty conjunction: realizable
    std::vector<ltl::Formula> formulas;
    formulas.reserve(subset.size());
    for (std::size_t i : subset) {
      speccc_check(i < requirements.size(), "oracle subset index out of range");
      formulas.push_back(requirements[i]);
    }
    const auto result = synth::synthesize(formulas, signature, options);
    if (result.verdict == synth::Realizability::kRealizable) {
      return std::nullopt;
    }
    return subset;  // no finer core available: echo the query
  };
}

CoreOracle sat_group_oracle(sat::Solver& solver,
                            std::vector<sat::Lit> selectors) {
  return [&solver, selectors = std::move(selectors)](
             const std::vector<std::size_t>& subset)
             -> std::optional<std::vector<std::size_t>> {
    std::vector<sat::Lit> assumptions;
    assumptions.reserve(subset.size());
    for (std::size_t i : subset) {
      speccc_check(i < selectors.size(), "oracle subset index out of range");
      assumptions.push_back(selectors[i]);
    }
    if (solver.solve(assumptions) == sat::Result::kSat) return std::nullopt;
    // Map the failed assumptions back to group indices. An empty solver
    // core (hard clauses alone are unsat) has no consistent subset at all;
    // report the query so shrink_mus still terminates with a witness.
    std::vector<std::size_t> core;
    for (std::size_t k = 0; k < subset.size(); ++k) {
      if (solver.assumption_failed(assumptions[k])) core.push_back(subset[k]);
    }
    if (core.empty()) return subset;
    return core;
  };
}

}  // namespace speccc::diag
