// Inconsistency diagnosis: minimal inconsistent subsets (MUS) and minimal
// correction sets (MCS) over requirement indices.
//
// The engine is oracle-driven: a CoreOracle answers "is this subset of the
// requirements consistent?", and on inconsistency may return a smaller
// inconsistent core of the query (assumption-based SAT cores do; the
// synthesis oracle just echoes the query). Both algorithms rest on the
// monotonicity of consistency under subsets -- every subset of a
// consistent (realizable) conjunction is consistent -- which holds for
// realizability under a fixed I/O signature and for satisfiability alike:
//
//   * shrink_mus: deletion-based MUS extraction with core jumps. Each
//     round either proves one element necessary (removing it restores
//     consistency) or replaces the candidate set by the oracle's smaller
//     core, so a MUS costs at most 2n oracle calls. Necessity proofs
//     carry over shrinking: a set that was consistent stays consistent
//     when further elements are dropped.
//
//   * correction_sets: the linear-search MaxSAT loop (cf. abc-zz
//     ZZ/MaxSat). Each rotation greedily grows a maximal satisfiable
//     subset (MSS) from a different starting element; its complement is a
//     minimal correction set -- removing it restores consistency, and no
//     proper subset of it does, by the MSS's maximality.
//
// Everything is deterministic: same requirements, same oracle, same
// diagnosis, byte for byte. That is what lets batch reports carry MUS and
// MCS output inside the canonical (jobs-independent, cache-independent)
// form.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "ltl/formula.hpp"
#include "sat/solver.hpp"
#include "synth/synthesizer.hpp"

namespace speccc::diag {

/// Consistency oracle over subsets of requirement indices. Returns nullopt
/// when the subset is consistent; otherwise an inconsistent core that is a
/// subset of the query (at worst the query itself, echoed back).
using CoreOracle = std::function<std::optional<std::vector<std::size_t>>(
    const std::vector<std::size_t>&)>;

struct Options {
  /// Minimal correction sets to enumerate (0 disables the MaxSAT loop).
  /// The rotation search finds at most one MCS per requirement, so "up to
  /// N" may under-enumerate specs with many disjoint repairs.
  std::size_t max_correction_sets = 4;
};

struct Diagnosis {
  /// A minimal inconsistent subset: inconsistent as-is, consistent when
  /// any single element is dropped. Empty iff the full set is consistent.
  std::vector<std::size_t> mus;
  /// Minimal correction sets, smallest first (ties lexicographic):
  /// removing any one restores consistency, and each is minimal with that
  /// property. Disjoint from each other only by accident -- they are
  /// alternative repairs, not a partition.
  std::vector<std::vector<std::size_t>> correction_sets;
  /// Oracle calls performed.
  std::size_t checks = 0;

  [[nodiscard]] bool consistent() const { return mus.empty(); }
};

/// Shrink an inconsistent candidate set to a MUS. Precondition: the oracle
/// reports `candidates` inconsistent. `checks` is incremented per oracle
/// call.
[[nodiscard]] std::vector<std::size_t> shrink_mus(
    std::vector<std::size_t> candidates, const CoreOracle& oracle,
    std::size_t& checks);

/// Enumerate up to `max_sets` minimal correction sets of an inconsistent
/// universe by the rotation/grow loop. Precondition: `universe` is
/// inconsistent (otherwise the result is empty).
[[nodiscard]] std::vector<std::vector<std::size_t>> correction_sets(
    const std::vector<std::size_t>& universe, const CoreOracle& oracle,
    std::size_t max_sets, std::size_t& checks);

/// Full diagnosis of requirements {0, ..., num_requirements-1}: one oracle
/// call on the universe, then MUS shrinking and MCS enumeration when it is
/// inconsistent.
[[nodiscard]] Diagnosis diagnose(std::size_t num_requirements,
                                 const CoreOracle& oracle,
                                 const Options& options = {});

/// Oracle over realizability: a subset is consistent iff the conjunction
/// of its formulas is realizable under the (fixed) signature. kUnknown
/// counts as inconsistent, matching refine's conservative reading. No real
/// cores -- inconsistent queries are echoed back.
[[nodiscard]] CoreOracle synthesis_oracle(
    std::vector<ltl::Formula> requirements, synth::IoSignature signature,
    synth::SynthesisOptions options = {});

/// Oracle over a CNF group instance: group i is enabled by asserting the
/// selector literal selectors[i], so a subset query is one incremental
/// sat::Solver::solve(assumptions) call and inconsistent queries return
/// the solver's real assumption core mapped back to group indices. The
/// solver must outlive the oracle; clauses learned by one query speed up
/// the next (this is what makes SAT-backed MUS shrinking cheap).
[[nodiscard]] CoreOracle sat_group_oracle(sat::Solver& solver,
                                          std::vector<sat::Lit> selectors);

}  // namespace speccc::diag
