// Bounded LTL synthesis via universal co-Buechi automata and safety games
// (Schewe & Finkbeiner; Filiot, Jin & Raskin) -- the full-LTL engine behind
// the consistency check of paper Section V-A.
//
// Realizability of phi for a Mealy system: build the UCW of phi (the NBW of
// !phi read universally), annotate runs with counters bounded by k, and
// solve the resulting safety game (environment moves first with an input
// letter, system answers with an output letter; the system loses when some
// counter overflows). If the system wins, a finite-state controller exists
// and phi is realizable.
//
// Unrealizability: the determinacy argument -- phi is Mealy-unrealizable for
// the system iff !phi is Moore-realizable for the environment -- yields the
// dual game: the environment commits to an input letter first, the system
// answers adversarially, counters run over the UCW of !phi. Escalating k on
// both games in lockstep gives a complete procedure in the limit; a verdict
// may remain unknown at the configured bound.
//
// This engine enumerates the alphabet explicitly and is intended for small
// signatures (tests, per-requirement analysis, the paper's footnote
// example); Table I-scale specifications take the symbolic monitor engine.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "ltl/formula.hpp"
#include "synth/mealy.hpp"

namespace speccc::synth {

enum class Realizability { kRealizable, kUnrealizable, kUnknown };

struct BoundedOptions {
  int max_k = 8;              // counter bound escalation limit
  bool extract = true;        // build the Mealy controller on success
  std::size_t max_alphabet_bits = 14;  // |inputs| + |outputs| hard cap
  /// Abort a game whose arena outgrows this many positions. An aborted
  /// primal game cannot prove realizability (and vice versa), so exceeding
  /// the cap degrades the verdict to kUnknown instead of grinding; SIZE_MAX
  /// (the default) never aborts. The differential harness relies on this to
  /// keep pathological X-chain specifications time-bounded.
  std::size_t max_game_positions = SIZE_MAX;
  /// Give up (kUnknown, aborted) when either UCW exceeds this many states
  /// before any game is played: a big UCW makes every counter game blow
  /// past max_game_positions anyway, so playing them only burns time.
  std::size_t max_ucw_states = SIZE_MAX;
  /// Cooperative cancellation, polled in the UCW construction, the game
  /// frontier, and the k-escalation loop; returning true raises
  /// util::CancelledError. Null is never cancelled. Last member on
  /// purpose: existing designated initializers stay valid.
  std::function<bool()> cancelled;
};

struct BoundedOutcome {
  Realizability verdict = Realizability::kUnknown;
  int k_used = -1;                      // bound at which the verdict fired
  std::size_t game_positions = 0;       // peak arena size
  std::size_t ucw_states = 0;
  /// True when some game hit max_game_positions (verdict left kUnknown
  /// unless the other game still decided it).
  bool aborted = false;
  std::optional<MealyMachine> controller;  // primal winner only
};

/// Decide realizability of `spec` (a single formula; conjoin requirements
/// before calling) for a Mealy system with the given signature.
/// Throws InvalidInputError when the signature exceeds max_alphabet_bits or
/// the formula mentions propositions outside the signature.
[[nodiscard]] BoundedOutcome bounded_synthesize(ltl::Formula spec,
                                                const IoSignature& signature,
                                                const BoundedOptions& options = {});

}  // namespace speccc::synth
