#include "synth/bounded.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "automata/gpvw.hpp"
#include "game/safety.hpp"
#include "util/diagnostics.hpp"

namespace speccc::synth {

namespace {

using automata::Buchi;
using Counter = std::vector<std::int16_t>;  // -1 = not active

constexpr std::int16_t kBot = -1;

/// One bounded safety game over counter functions.
///
/// `first` letters are chosen by the player moving first in each step,
/// `second` by the responder; `safe_moves_second` states whether the SAFE
/// player (who must keep counters bounded) is the responder (primal game:
/// system responds to inputs) or the first mover (dual game: environment
/// commits, system responds adversarially).
class BoundedGame {
 public:
  BoundedGame(const Buchi& ucw, std::vector<ltl::Valuation> first_letters,
              std::vector<ltl::Valuation> second_letters, bool safe_moves_second,
              int k, std::size_t max_positions,
              const std::function<bool()>& cancelled)
      : ucw_(ucw),
        first_letters_(std::move(first_letters)),
        second_letters_(std::move(second_letters)),
        safe_second_(safe_moves_second),
        k_(k),
        max_positions_(max_positions),
        cancelled_(cancelled) {
    // Pre-merge letters: valuation of a step is the union of the first and
    // second mover's letters (they range over disjoint propositions).
    build();
  }

  /// True when exploration hit max_positions; the winner is then unknown.
  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] bool safe_player_wins() const {
    return !aborted_ && result_.initial_safe(arena_);
  }
  [[nodiscard]] std::size_t positions() const { return arena_.size(); }

  /// Extract the SAFE responder's strategy as a Mealy machine (primal game
  /// only: inputs = first letters, outputs = second letters).
  [[nodiscard]] MealyMachine extract(const IoSignature& signature) const;

 private:
  Counter initial_counter() const {
    Counter c(ucw_.num_states(), kBot);
    const auto init = static_cast<std::size_t>(ucw_.initial);
    c[init] = ucw_.accepting[init] ? 1 : 0;
    return c;
  }

  /// Successor counter under a joint valuation; nullopt on overflow.
  std::optional<Counter> step(const Counter& c, const ltl::Valuation& v) const {
    Counter out(ucw_.num_states(), kBot);
    for (std::size_t q = 0; q < ucw_.num_states(); ++q) {
      if (c[q] == kBot) continue;
      for (const automata::Transition& t : ucw_.transitions[q]) {
        if (!t.label.matches(v)) continue;
        const auto tq = static_cast<std::size_t>(t.target);
        const std::int16_t bump = ucw_.accepting[tq] ? 1 : 0;
        const auto val = static_cast<std::int16_t>(c[q] + bump);
        if (val > out[tq]) out[tq] = val;
      }
    }
    for (std::size_t q = 0; q < ucw_.num_states(); ++q) {
      if (out[q] > static_cast<std::int16_t>(k_)) return std::nullopt;
    }
    return out;
  }

  int intern_counter(const Counter& c) {
    const auto it = counter_ids_.find(c);
    if (it != counter_ids_.end()) return it->second;
    const game::Owner first_owner =
        safe_second_ ? game::Owner::kReach : game::Owner::kSafe;
    const int pos = arena_.add_position(first_owner);
    const int id = static_cast<int>(counters_.size());
    counters_.push_back(c);
    counter_pos_.push_back(pos);
    counter_ids_.emplace(c, id);
    frontier_.push_back(id);
    return id;
  }

  void build() {
    // Joint valuations for every (first, second) letter pair.
    joint_.resize(first_letters_.size());
    for (std::size_t a = 0; a < first_letters_.size(); ++a) {
      joint_[a].resize(second_letters_.size());
      for (std::size_t b = 0; b < second_letters_.size(); ++b) {
        ltl::Valuation v = first_letters_[a];
        v.insert(second_letters_[b].begin(), second_letters_[b].end());
        joint_[a][b] = std::move(v);
      }
    }

    doom_ = arena_.add_position(game::Owner::kReach, /*is_dead=*/true);
    const int init_id = intern_counter(initial_counter());
    arena_.initial = counter_pos_[static_cast<std::size_t>(init_id)];

    const game::Owner second_owner =
        safe_second_ ? game::Owner::kSafe : game::Owner::kReach;

    while (!frontier_.empty()) {
      if (cancelled_ && cancelled_()) {
        throw util::CancelledError("bounded game construction cancelled");
      }
      if (arena_.size() > max_positions_) {
        aborted_ = true;
        return;  // partial arena: solving it would prove nothing
      }
      const int id = frontier_.back();
      frontier_.pop_back();
      const int from_pos = counter_pos_[static_cast<std::size_t>(id)];
      const Counter counter = counters_[static_cast<std::size_t>(id)];
      for (std::size_t a = 0; a < first_letters_.size(); ++a) {
        const int mid = arena_.add_position(second_owner);
        arena_.add_move(from_pos, mid);
        for (std::size_t b = 0; b < second_letters_.size(); ++b) {
          const auto succ = step(counter, joint_[a][b]);
          if (!succ) {
            arena_.add_move(mid, doom_);
            continue;
          }
          const int sid = intern_counter(*succ);
          arena_.add_move(mid, counter_pos_[static_cast<std::size_t>(sid)]);
        }
      }
    }
    result_ = game::solve(arena_);
  }

  const Buchi& ucw_;
  std::vector<ltl::Valuation> first_letters_;
  std::vector<ltl::Valuation> second_letters_;
  std::vector<std::vector<ltl::Valuation>> joint_;
  bool safe_second_;
  int k_;
  std::size_t max_positions_;
  const std::function<bool()>& cancelled_;
  bool aborted_ = false;

  game::Arena arena_;
  game::SafetyResult result_;
  int doom_ = -1;
  std::map<Counter, int> counter_ids_;
  std::vector<Counter> counters_;
  std::vector<int> counter_pos_;  // counter id -> arena position
  std::vector<int> frontier_;
};

MealyMachine BoundedGame::extract(const IoSignature& signature) const {
  speccc_check(safe_second_, "controller extraction is for the primal game");
  MealyMachine machine(signature);

  // Machine states = winning counter positions, discovered on the fly.
  std::map<int, int> counter_to_state;  // counter id -> machine state
  std::vector<int> work;
  const auto state_of = [&](int counter_id) {
    const auto it = counter_to_state.find(counter_id);
    if (it != counter_to_state.end()) return it->second;
    const int s = machine.add_state();
    counter_to_state.emplace(counter_id, s);
    work.push_back(counter_id);
    return s;
  };

  const int init_id = counter_ids_.at(initial_counter());
  (void)state_of(init_id);

  while (!work.empty()) {
    const int id = work.back();
    work.pop_back();
    const int machine_state = counter_to_state.at(id);
    const Counter& counter = counters_[static_cast<std::size_t>(id)];
    for (std::size_t a = 0; a < first_letters_.size(); ++a) {
      // Choose the first response whose successor is winning.
      bool placed = false;
      for (std::size_t b = 0; b < second_letters_.size() && !placed; ++b) {
        const auto succ = step(counter, joint_[a][b]);
        if (!succ) continue;
        const auto sit = counter_ids_.find(*succ);
        speccc_check(sit != counter_ids_.end(), "successor not explored");
        const int spos = counter_pos_[static_cast<std::size_t>(sit->second)];
        if (!result_.safe_wins[static_cast<std::size_t>(spos)]) continue;
        machine.set_transition(machine_state, static_cast<Word>(a),
                               static_cast<Word>(b), state_of(sit->second));
        placed = true;
      }
      speccc_check(placed, "winning position must have a safe response");
    }
  }
  return machine;
}

/// All valuations over a proposition list, in mask order (bit b of the mask
/// corresponds to props[b]).
std::vector<ltl::Valuation> enumerate_letters(const std::vector<std::string>& props) {
  const std::size_t n = props.size();
  std::vector<ltl::Valuation> out(std::size_t{1} << n);
  for (std::size_t mask = 0; mask < out.size(); ++mask) {
    for (std::size_t b = 0; b < n; ++b) {
      if ((mask >> b) & 1) out[mask].insert(props[b]);
    }
  }
  return out;
}

}  // namespace

BoundedOutcome bounded_synthesize(ltl::Formula spec, const IoSignature& signature,
                                  const BoundedOptions& options) {
  if (signature.inputs.size() + signature.outputs.size() >
      options.max_alphabet_bits) {
    throw util::InvalidInputError(
        "bounded synthesis signature exceeds the explicit-alphabet cap; use "
        "the symbolic engine");
  }
  for (const std::string& a : spec.atoms()) {
    const bool known =
        std::find(signature.inputs.begin(), signature.inputs.end(), a) !=
            signature.inputs.end() ||
        std::find(signature.outputs.begin(), signature.outputs.end(), a) !=
            signature.outputs.end();
    if (!known) {
      throw util::InvalidInputError("formula mentions unknown proposition: " + a);
    }
  }

  BoundedOutcome outcome;
  const auto primal_opt = automata::ucw_for_bounded(spec, options.max_ucw_states,
                                                    options.cancelled);
  if (!primal_opt) {
    outcome.aborted = true;
    return outcome;
  }
  const Buchi& primal_ucw = *primal_opt;
  outcome.ucw_states = primal_ucw.num_states();
  if (primal_ucw.num_states() > options.max_ucw_states) {
    outcome.aborted = true;
    return outcome;
  }
  const auto dual_opt = automata::ucw_for_bounded(
      ltl::lnot(spec), options.max_ucw_states, options.cancelled);
  if (!dual_opt || dual_opt->num_states() > options.max_ucw_states) {
    outcome.aborted = true;
    return outcome;
  }
  const Buchi& dual_ucw = *dual_opt;
  const auto inputs = enumerate_letters(signature.inputs);
  const auto outputs = enumerate_letters(signature.outputs);

  for (int k = 0; k <= options.max_k; ++k) {
    if (options.cancelled && options.cancelled()) {
      throw util::CancelledError("bounded synthesis cancelled");
    }
    // Primal: environment picks inputs first, system responds; system SAFE.
    BoundedGame primal(primal_ucw, inputs, outputs, /*safe_moves_second=*/true,
                       k, options.max_game_positions, options.cancelled);
    outcome.game_positions = std::max(outcome.game_positions, primal.positions());
    if (primal.safe_player_wins()) {
      outcome.verdict = Realizability::kRealizable;
      outcome.k_used = k;
      if (options.extract) outcome.controller = primal.extract(signature);
      return outcome;
    }
    // Dual: environment commits inputs first and must keep the UCW of !spec
    // bounded; the system responds adversarially. Environment SAFE.
    BoundedGame dual(dual_ucw, inputs, outputs, /*safe_moves_second=*/false, k,
                     options.max_game_positions, options.cancelled);
    outcome.game_positions = std::max(outcome.game_positions, dual.positions());
    if (dual.safe_player_wins()) {
      outcome.verdict = Realizability::kUnrealizable;
      outcome.k_used = k;
      return outcome;
    }
    // An aborted game proves nothing, and a larger k only grows the arena:
    // stop escalating and report the bound-limited verdict.
    if (primal.aborted() || dual.aborted()) {
      outcome.aborted = true;
      break;
    }
  }
  outcome.verdict = Realizability::kUnknown;
  return outcome;
}

}  // namespace speccc::synth
