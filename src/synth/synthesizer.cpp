#include "synth/synthesizer.hpp"

#include "util/diagnostics.hpp"

namespace speccc::synth {

namespace {

std::optional<SynthesisResult> try_symbolic(
    const std::vector<ltl::Formula>& requirements, const IoSignature& signature,
    const SynthesisOptions& options) {
  util::Stopwatch timer;
  const auto outcome = symbolic_synthesize(requirements, signature, options.symbolic);
  if (!outcome.has_value()) return std::nullopt;
  SynthesisResult result;
  result.verdict = outcome->verdict;
  result.engine_used = Engine::kSymbolic;
  result.substrate_used = "symbolic";
  result.state_bits = outcome->state_bits;
  result.peak_bdd_nodes = outcome->peak_bdd_nodes;
  result.bdd_stats = outcome->bdd_stats;
  result.iterations = outcome->fixpoint_iterations;
  result.controller = outcome->controller;
  result.seconds = timer.seconds();
  return result;
}

SynthesisResult run_bounded(const std::vector<ltl::Formula>& requirements,
                            const IoSignature& signature,
                            const SynthesisOptions& options) {
  util::Stopwatch timer;
  const ltl::Formula spec = ltl::land(requirements);
  const auto outcome = bounded_synthesize(spec, signature, options.bounded);
  SynthesisResult result;
  result.verdict = outcome.verdict;
  result.engine_used = Engine::kBounded;
  result.substrate_used = "bounded";
  result.ucw_states = outcome.ucw_states;
  result.game_positions = outcome.game_positions;
  result.iterations = outcome.k_used;
  result.controller = outcome.controller;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

SynthesisResult synthesize(const std::vector<ltl::Formula>& requirements,
                           const IoSignature& signature,
                           const SynthesisOptions& options) {
  if (requirements.empty()) {
    throw util::InvalidInputError("cannot synthesize from an empty specification");
  }
  switch (options.engine) {
    case Engine::kSymbolic: {
      auto result = try_symbolic(requirements, signature, options);
      if (!result.has_value()) {
        throw util::InvalidInputError(
            "specification is outside the symbolic engine's pattern fragment "
            "or mentions propositions missing from the signature");
      }
      return *result;
    }
    case Engine::kBounded:
      return run_bounded(requirements, signature, options);
    case Engine::kAuto:
      break;
  }
  if (auto result = try_symbolic(requirements, signature, options)) {
    return *result;
  }
  return run_bounded(requirements, signature, options);
}

}  // namespace speccc::synth
