#include "synth/monitors.hpp"

#include <algorithm>

#include "util/diagnostics.hpp"

namespace speccc::synth {

namespace {

using ltl::Formula;
using ltl::Op;
using ltl::PatternInstance;
using ltl::PatternKind;

class Compiler;
bdd::Bdd prop_to_bdd(bdd::Manager& mgr, Compiler& compiler, Formula f);

class Compiler {
 public:
  Compiler(bdd::Manager& mgr, const IoSignature& signature)
      : mgr_(mgr), signature_(signature) {
    spec_.game.manager = &mgr_;
    spec_.game.safe = mgr_.bdd_true();
    // Proposition variables are allocated lazily, in first-use order: for
    // conjunctions of per-requirement monitors this keeps each requirement's
    // propositions adjacent in the BDD order, which is the difference
    // between linear- and exponential-sized safety constraints
    // (G (a1 -> b1) && G (a2 -> b2) && ... is linear when interleaved
    // a1 b1 a2 b2 and exponential when grouped a1 a2 ... b1 b2 ...).
  }

  bool add(const PatternInstance& p, std::size_t origin) {
    switch (p.kind) {
      case PatternKind::kInvariant:
        spec_.game.safe =
            mgr_.bdd_and(spec_.game.safe, prop(p.guard));
        return true;
      case PatternKind::kImplication:
        add_implication(prop(p.guard), prop(p.consequent), p.delay);
        return true;
      case PatternKind::kGuardDelayed:
        add_guard_delayed(prop(p.guard), prop(p.consequent), p.delay);
        return true;
      case PatternKind::kResponse:
        add_response(prop(p.guard), prop(p.consequent), origin);
        return true;
      case PatternKind::kWeakUntil:
        add_weak_until(prop(p.guard), prop(p.consequent), prop(p.release));
        return true;
      case PatternKind::kStrongUntil:
        add_weak_until(prop(p.guard), prop(p.consequent), prop(p.release));
        add_response(prop(p.guard), prop(p.release), origin);
        return true;
      case PatternKind::kExistence:
        add_existence(prop(p.guard), origin);
        return true;
    }
    return false;
  }

  CompiledSpec finish() {
    // Allocate variables for signature propositions never mentioned by any
    // requirement (they are unconstrained but must exist for extraction).
    for (const std::string& name : signature_.inputs) prop_var(name);
    for (const std::string& name : signature_.outputs) prop_var(name);
    // Partition the allocated proposition variables by signature role, in
    // signature order (extraction indexes input bit b as inputs[b]).
    for (const std::string& name : signature_.inputs) {
      spec_.game.input_vars.push_back(spec_.prop_var.at(name));
    }
    for (const std::string& name : signature_.outputs) {
      spec_.game.output_vars.push_back(spec_.prop_var.at(name));
    }
    // Initial-state predicate: the minterm given by initial_bits, built as
    // one cube (a single bottom-up pass) instead of a conjunction chain.
    std::vector<std::pair<int, bool>> initial_literals;
    initial_literals.reserve(spec_.game.state_vars.size());
    for (std::size_t b = 0; b < spec_.game.state_vars.size(); ++b) {
      initial_literals.emplace_back(spec_.game.state_vars[b],
                                    spec_.initial_bits[b]);
    }
    spec_.game.initial = mgr_.cube(initial_literals);
    return std::move(spec_);
  }

 private:
  int prop_var(const std::string& name) {
    const auto it = spec_.prop_var.find(name);
    if (it != spec_.prop_var.end()) return it->second;
    const int v = mgr_.new_var();
    spec_.prop_var.emplace(name, v);
    return v;
  }

  bdd::Bdd prop(Formula f) { return prop_to_bdd(mgr_, *this, f); }
  friend bdd::Bdd prop_to_bdd(bdd::Manager&, Compiler&, Formula);

  int new_state_bit(bool initial) {
    const int v = mgr_.new_var();
    spec_.game.state_vars.push_back(v);
    spec_.game.next_state.emplace_back();  // filled by caller
    spec_.initial_bits.push_back(initial);
    return v;
  }

  void set_update(int var, bdd::Bdd update) {
    for (std::size_t b = 0; b < spec_.game.state_vars.size(); ++b) {
      if (spec_.game.state_vars[b] == var) {
        spec_.game.next_state[b] = update;
        return;
      }
    }
    speccc_check(false, "unknown state variable");
  }

  /// G (g -> X^n c): register chain d1..dn of guard history.
  /// d1' = g(now); dj' = d_{j-1}; violation when dn && !c(now).
  void add_implication(bdd::Bdd guard, bdd::Bdd consequent, std::size_t delay) {
    if (delay == 0) {
      spec_.game.safe =
          mgr_.bdd_and(spec_.game.safe, mgr_.implies(guard, consequent));
      return;
    }
    std::vector<int> regs;
    for (std::size_t j = 0; j < delay; ++j) regs.push_back(new_state_bit(false));
    set_update(regs[0], guard);
    for (std::size_t j = 1; j < delay; ++j) {
      set_update(regs[j], mgr_.var(regs[j - 1]));
    }
    spec_.game.safe = mgr_.bdd_and(
        spec_.game.safe, mgr_.implies(mgr_.var(regs[delay - 1]), consequent));
  }

  /// G (X^n g -> c): register chain e1..en of consequent history,
  /// initialized to true (no obligation exists for the first n steps).
  /// e1' = c(now); ej' = e_{j-1}; violation when g(now) && !en.
  void add_guard_delayed(bdd::Bdd guard, bdd::Bdd consequent, std::size_t delay) {
    speccc_check(delay >= 1, "guard-delayed pattern needs delay >= 1");
    std::vector<int> regs;
    for (std::size_t j = 0; j < delay; ++j) regs.push_back(new_state_bit(true));
    set_update(regs[0], consequent);
    for (std::size_t j = 1; j < delay; ++j) {
      set_update(regs[j], mgr_.var(regs[j - 1]));
    }
    spec_.game.safe = mgr_.bdd_and(
        spec_.game.safe, mgr_.implies(guard, mgr_.var(regs[delay - 1])));
  }

  /// G (g -> F c): obligation bit; obliged' = (obliged || g) && !c.
  /// Buechi predicate: !obliged (the obligation is discharged infinitely
  /// often, i.e. every triggered response eventually happens).
  void add_response(bdd::Bdd guard, bdd::Bdd consequent, std::size_t origin) {
    const int obliged = new_state_bit(false);
    set_update(obliged, mgr_.bdd_and(mgr_.bdd_or(mgr_.var(obliged), guard),
                                     mgr_.bdd_not(consequent)));
    spec_.game.buchi.push_back(mgr_.nvar(obliged));
    spec_.buchi_origin.push_back(origin);
  }

  /// G (g -> (p W q)): active = w || g; violation when active && !q && !p;
  /// w' = active && !q.
  void add_weak_until(bdd::Bdd guard, bdd::Bdd hold, bdd::Bdd release) {
    const int w = new_state_bit(false);
    const bdd::Bdd active = mgr_.bdd_or(mgr_.var(w), guard);
    set_update(w, mgr_.bdd_and(active, mgr_.bdd_not(release)));
    spec_.game.safe = mgr_.bdd_and(
        spec_.game.safe,
        mgr_.implies(mgr_.bdd_and(active, mgr_.bdd_not(release)), hold));
  }

  /// F p: done' = done || p; Buechi predicate: done.
  void add_existence(bdd::Bdd body, std::size_t origin) {
    const int done = new_state_bit(false);
    set_update(done, mgr_.bdd_or(mgr_.var(done), body));
    spec_.game.buchi.push_back(mgr_.var(done));
    spec_.buchi_origin.push_back(origin);
  }

  bdd::Manager& mgr_;
  [[maybe_unused]] const IoSignature& signature_;
  CompiledSpec spec_;
};

/// Propositional formula -> BDD, allocating proposition variables on first
/// use (see the ordering note in Compiler's constructor).
bdd::Bdd prop_to_bdd(bdd::Manager& mgr, Compiler& compiler, Formula f) {
  switch (f.op()) {
    case Op::kTrue:
      return mgr.bdd_true();
    case Op::kFalse:
      return mgr.bdd_false();
    case Op::kAp:
      return mgr.var(compiler.prop_var(f.ap_name()));
    case Op::kNot:
      return mgr.bdd_not(prop_to_bdd(mgr, compiler, f.child(0)));
    case Op::kAnd: {
      bdd::Bdd acc = mgr.bdd_true();
      for (Formula c : f.children()) {
        acc = mgr.bdd_and(acc, prop_to_bdd(mgr, compiler, c));
      }
      return acc;
    }
    case Op::kOr: {
      bdd::Bdd acc = mgr.bdd_false();
      for (Formula c : f.children()) {
        acc = mgr.bdd_or(acc, prop_to_bdd(mgr, compiler, c));
      }
      return acc;
    }
    case Op::kImplies:
      return mgr.implies(prop_to_bdd(mgr, compiler, f.child(0)),
                         prop_to_bdd(mgr, compiler, f.child(1)));
    case Op::kIff:
      return mgr.iff(prop_to_bdd(mgr, compiler, f.child(0)),
                     prop_to_bdd(mgr, compiler, f.child(1)));
    default:
      speccc_check(false, "temporal operator in propositional context");
      return mgr.bdd_false();
  }
}

bool mentions_only(const ltl::Formula& f, const IoSignature& signature) {
  const auto atoms = f.atoms();
  for (const std::string& a : atoms) {
    const bool in_inputs = std::find(signature.inputs.begin(),
                                     signature.inputs.end(),
                                     a) != signature.inputs.end();
    const bool in_outputs = std::find(signature.outputs.begin(),
                                      signature.outputs.end(),
                                      a) != signature.outputs.end();
    if (!in_inputs && !in_outputs) return false;
  }
  return true;
}

}  // namespace

bool fragment_covers(const std::vector<ltl::Formula>& spec) {
  for (const ltl::Formula& f : spec) {
    if (!ltl::recognize_pattern(f).has_value()) return false;
  }
  return true;
}

std::optional<CompiledSpec> compile_monitors(bdd::Manager& manager,
                                             const std::vector<ltl::Formula>& spec,
                                             const IoSignature& signature) {
  std::vector<PatternInstance> instances;
  for (const ltl::Formula& f : spec) {
    auto p = ltl::recognize_pattern(f);
    if (!p.has_value()) return std::nullopt;
    if (!mentions_only(f, signature)) return std::nullopt;
    instances.push_back(*p);
  }
  Compiler compiler(manager, signature);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const bool ok = compiler.add(instances[i], i);
    speccc_check(ok, "recognized pattern must compile");
  }
  return compiler.finish();
}

}  // namespace speccc::synth
