// Closing the paper's loop: the synthesized controller as a *reference
// model* and a *test-case generator* (Section I motivates both).
//
//   * verify(): exhaustive LTL model checking of a Mealy machine -- the
//     product of the machine (with the environment's inputs left
//     nondeterministic) and the Buechi automaton of the negated property is
//     searched for an accepting lasso. A nonempty product yields a concrete
//     input-sequence counterexample; an empty one proves the controller
//     satisfies the property on every environment behaviour. Property tests
//     use this to prove -- not just sample -- that synthesis output
//     implements the specification.
//
//   * transition_tour(): structural test-suite generation -- a set of input
//     sequences from the initial state that exercises every reachable
//     transition of the machine, with the expected output word recorded for
//     each step (the classic conformance-testing transition tour).
#pragma once

#include <optional>
#include <vector>

#include "ltl/formula.hpp"
#include "ltl/trace.hpp"
#include "synth/mealy.hpp"

namespace speccc::synth {

struct CounterExample {
  /// Input masks driving the machine into the violation; the trace loops
  /// over the suffix starting at loop_start.
  std::vector<Word> inputs;
  std::size_t loop_start = 0;
  /// The combined (input + output) trace, ready for ltl::evaluate.
  ltl::Lasso trace;
};

struct VerificationResult {
  bool holds = false;
  std::optional<CounterExample> counterexample;
  std::size_t product_states = 0;  // explored product size (diagnostics)
};

/// Does the machine satisfy `property` under every input sequence?
/// The machine must be input-complete (synthesized machines are).
[[nodiscard]] VerificationResult verify(const MealyMachine& machine,
                                        ltl::Formula property);

/// One test case: an input word and the machine's expected outputs.
struct TestCase {
  std::vector<Word> inputs;
  std::vector<Word> expected_outputs;
};

/// A transition tour: test cases covering every reachable transition at
/// least once. Deterministic; each case starts from the initial state.
[[nodiscard]] std::vector<TestCase> transition_tour(const MealyMachine& machine);

/// Replay a test case against an implementation (any callable
/// (state-less) step function Word -> Word); true when every output
/// matches. Used to check implementations against the reference model.
template <typename Step>
[[nodiscard]] bool replay(const TestCase& test, Step step) {
  for (std::size_t i = 0; i < test.inputs.size(); ++i) {
    if (step(test.inputs[i]) != test.expected_outputs[i]) return false;
  }
  return true;
}

}  // namespace speccc::synth
