#include "synth/mealy_export.hpp"

#include <sstream>

namespace speccc::synth {

namespace {

std::string mask_names(Word mask, const std::vector<std::string>& props) {
  std::string out;
  for (std::size_t b = 0; b < props.size(); ++b) {
    if ((mask >> b) & 1) {
      if (!out.empty()) out += " ";
      out += props[b];
    }
  }
  return out.empty() ? "-" : out;
}

}  // namespace

std::string to_dot(const MealyMachine& machine, const std::string& name) {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  os << "  init [shape=point];\n  init -> s" << machine.initial() << ";\n";
  const std::size_t n_inputs = machine.signature().inputs.size();
  for (int s = 0; s < static_cast<int>(machine.num_states()); ++s) {
    for (Word in = 0; in < (Word{1} << n_inputs); ++in) {
      if (!machine.has_transition(s, in)) continue;
      os << "  s" << s << " -> s" << machine.next(s, in) << " [label=\""
         << mask_names(in, machine.signature().inputs) << " / "
         << mask_names(machine.output(s, in), machine.signature().outputs)
         << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_csv(const MealyMachine& machine) {
  std::ostringstream os;
  os << "state,inputs,outputs,next\n";
  const std::size_t n_inputs = machine.signature().inputs.size();
  for (int s = 0; s < static_cast<int>(machine.num_states()); ++s) {
    for (Word in = 0; in < (Word{1} << n_inputs); ++in) {
      if (!machine.has_transition(s, in)) continue;
      os << s << "," << mask_names(in, machine.signature().inputs) << ","
         << mask_names(machine.output(s, in), machine.signature().outputs)
         << "," << machine.next(s, in) << "\n";
    }
  }
  return os.str();
}

}  // namespace speccc::synth
