// Compilation of pattern-fragment specifications into symbolic games.
//
// Every formula the translator emits (Section IV templates) is recognized by
// ltl::recognize_pattern and compiled into a small deterministic monitor:
//
//   kInvariant      G p               stepwise safety, no state
//   kImplication    G (g -> X^n c)    n-bit guard history register
//   kGuardDelayed   G (X^n g -> c)    n-bit consequent history register
//   kResponse       G (g -> F c)      1 obligation bit + Buechi predicate
//   kWeakUntil      G (g -> (p W q))  1 obligation bit, stepwise safety
//   kStrongUntil    G (g -> (p U q))  weak-until monitor + response monitor
//   kExistence      F p               1 latch bit + Buechi predicate
//
// The conjunction of all monitors forms one game::SymbolicGame whose system
// player wins iff the specification is realizable (consistent).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "game/symbolic.hpp"
#include "ltl/formula.hpp"
#include "ltl/patterns.hpp"
#include "synth/mealy.hpp"

namespace speccc::synth {

/// The compiled game plus the bookkeeping needed for strategy extraction.
struct CompiledSpec {
  game::SymbolicGame game;
  /// Proposition name -> BDD variable index (inputs and outputs).
  std::unordered_map<std::string, int> prop_var;
  /// Initial values of the state bits (same order as game.state_vars).
  std::vector<bool> initial_bits;
  /// Which source requirement each Buechi predicate came from.
  std::vector<std::size_t> buchi_origin;
};

/// Can the whole specification be compiled? True iff every formula is
/// recognized by ltl::recognize_pattern and mentions only signature
/// propositions.
[[nodiscard]] bool fragment_covers(const std::vector<ltl::Formula>& spec);

/// Compile a specification (conjunction of pattern instances) into a
/// symbolic game over a caller-provided manager. Returns nullopt when some
/// formula falls outside the fragment.
[[nodiscard]] std::optional<CompiledSpec> compile_monitors(
    bdd::Manager& manager, const std::vector<ltl::Formula>& spec,
    const IoSignature& signature);

}  // namespace speccc::synth
