// Export of synthesized controllers: Graphviz DOT for inspection and a
// plain CSV transition table for downstream tooling -- the paper's
// "reference model" artifact in shareable form.
#pragma once

#include <string>

#include "synth/mealy.hpp"

namespace speccc::synth {

/// Graphviz DOT. Transitions are labelled "in1 in2 / out1" with the
/// propositions that hold; '-' stands for the empty valuation.
[[nodiscard]] std::string to_dot(const MealyMachine& machine,
                                 const std::string& name = "controller");

/// CSV with header: state, then one column per input proposition, the
/// output propositions that hold, and the successor state.
[[nodiscard]] std::string to_csv(const MealyMachine& machine);

}  // namespace speccc::synth
