#include "synth/symbolic_engine.hpp"

#include <map>
#include <vector>

#include "game/symbolic.hpp"
#include "synth/monitors.hpp"
#include "util/diagnostics.hpp"

namespace speccc::synth {

namespace {

using game::SymbolicGame;
using game::SymbolicSolution;

/// Strategy extraction for the generalized-Buechi game: machine states are
/// (monitor state bits, pursuit index). Pursuing Buechi set j, the system
/// descends the mu-stages of j; on reaching stage 0 (an F_j state from which
/// the winning region is controllable) it advances to the next set.
class Extractor {
 public:
  Extractor(const CompiledSpec& spec, const SymbolicSolution& solution,
            const IoSignature& signature)
      : spec_(spec),
        solution_(solution),
        mgr_(*spec.game.manager),
        signature_(signature) {
    // Precompute safe ∧ T∘f for each needed target set.
    win_step_ = step_into(solution_.winning);
    stage_steps_.resize(solution_.stages.size());
    for (std::size_t j = 0; j < solution_.stages.size(); ++j) {
      for (const bdd::Bdd& stage : solution_.stages[j]) {
        stage_steps_[j].push_back(step_into(stage));
      }
    }
  }

  MealyMachine run() {
    MealyMachine machine(signature_);
    std::map<std::pair<std::vector<bool>, std::size_t>, int> ids;
    std::vector<std::pair<std::vector<bool>, std::size_t>> work;

    const auto state_of = [&](const std::vector<bool>& bits, std::size_t j) {
      const auto key = std::make_pair(bits, j);
      const auto it = ids.find(key);
      if (it != ids.end()) return it->second;
      const int s = machine.add_state();
      ids.emplace(key, s);
      work.push_back(key);
      return s;
    };

    (void)state_of(spec_.initial_bits, 0);
    const std::size_t n_inputs = signature_.inputs.size();
    const std::size_t m = solution_.stages.size();

    while (!work.empty()) {
      const auto [bits, j] = work.back();
      work.pop_back();
      const int s = ids.at({bits, j});
      for (Word in = 0; in < (Word{1} << n_inputs); ++in) {
        // Decide which target to pursue from this configuration.
        std::size_t nj = j;
        bdd::Bdd step = win_step_;
        if (m > 0) {
          const std::size_t r = min_stage(bits, j);
          if (r == 0) {
            nj = (j + 1) % m;
            step = win_step_;
          } else {
            step = stage_steps_[j][r - 1];
          }
        }
        const auto [out, next_bits] = choose(bits, in, step);
        machine.set_transition(s, in, out, state_of(next_bits, nj));
      }
    }
    return machine;
  }

 private:
  bdd::Bdd step_into(bdd::Bdd target) {
    return mgr_.bdd_and(spec_.game.safe,
                        game::apply_transition(spec_.game, target));
  }

  /// Smallest mu-stage of Buechi set j containing the state.
  std::size_t min_stage(const std::vector<bool>& bits, std::size_t j) const {
    const auto& stages = solution_.stages[j];
    for (std::size_t r = 0; r < stages.size(); ++r) {
      if (contains(stages[r], bits)) return r;
    }
    speccc_check(false, "winning state must lie in some stage");
    return 0;
  }

  bool contains(bdd::Bdd set, const std::vector<bool>& bits) const {
    // Evaluate over state vars only; input/output vars are absent from the
    // stage sets.
    std::vector<bool> assignment(static_cast<std::size_t>(mgr_.num_vars()), false);
    for (std::size_t b = 0; b < spec_.game.state_vars.size(); ++b) {
      assignment[static_cast<std::size_t>(spec_.game.state_vars[b])] = bits[b];
    }
    return const_cast<bdd::Manager&>(mgr_).evaluate(set, assignment);
  }

  /// Pick an output satisfying `step` for the given state and input; return
  /// (output mask, next state bits).
  std::pair<Word, std::vector<bool>> choose(const std::vector<bool>& bits,
                                            Word in, bdd::Bdd step) {
    // One constrained pick_model pass instead of |state|+|input|
    // successive conjunctions: fix the configuration, read any output
    // model consistent with it straight off the step relation.
    std::vector<std::pair<int, bool>> fixed;
    fixed.reserve(spec_.game.state_vars.size() + spec_.game.input_vars.size());
    for (std::size_t b = 0; b < spec_.game.state_vars.size(); ++b) {
      fixed.emplace_back(spec_.game.state_vars[b], bits[b]);
    }
    for (std::size_t b = 0; b < spec_.game.input_vars.size(); ++b) {
      fixed.emplace_back(spec_.game.input_vars[b], ((in >> b) & 1) != 0);
    }
    const auto model = mgr_.pick_model(step, fixed);
    speccc_check(!model.empty() || step.is_true(),
                 "no safe output from a winning configuration");

    std::vector<bool> assignment(static_cast<std::size_t>(mgr_.num_vars()), false);
    for (std::size_t b = 0; b < spec_.game.state_vars.size(); ++b) {
      assignment[static_cast<std::size_t>(spec_.game.state_vars[b])] = bits[b];
    }
    for (std::size_t b = 0; b < spec_.game.input_vars.size(); ++b) {
      assignment[static_cast<std::size_t>(spec_.game.input_vars[b])] =
          ((in >> b) & 1) != 0;
    }
    for (const auto& [v, value] : model) assignment[static_cast<std::size_t>(v)] = value;

    Word out = 0;
    for (std::size_t b = 0; b < spec_.game.output_vars.size(); ++b) {
      if (assignment[static_cast<std::size_t>(spec_.game.output_vars[b])]) {
        out |= Word{1} << b;
      }
    }
    std::vector<bool> next_bits(spec_.game.state_vars.size());
    for (std::size_t b = 0; b < spec_.game.state_vars.size(); ++b) {
      next_bits[b] = mgr_.evaluate(spec_.game.next_state[b], assignment);
    }
    return {out, next_bits};
  }

  const CompiledSpec& spec_;
  const SymbolicSolution& solution_;
  bdd::Manager& mgr_;
  const IoSignature& signature_;
  bdd::Bdd win_step_;
  std::vector<std::vector<bdd::Bdd>> stage_steps_;
};

}  // namespace

std::optional<SymbolicOutcome> symbolic_synthesize(
    const std::vector<ltl::Formula>& spec, const IoSignature& signature,
    const SymbolicOptions& options) {
  bdd::Manager manager;
  auto compiled = compile_monitors(manager, spec, signature);
  if (!compiled) return std::nullopt;

  const SymbolicSolution solution =
      game::solve(compiled->game, options.cancelled);

  SymbolicOutcome outcome;
  outcome.verdict = solution.realizable ? Realizability::kRealizable
                                        : Realizability::kUnrealizable;
  outcome.state_bits = compiled->game.state_vars.size();
  outcome.buchi_count = compiled->game.buchi.size();
  outcome.fixpoint_iterations = solution.iterations;

  if (solution.realizable && options.extract &&
      signature.inputs.size() <= options.max_extract_inputs) {
    Extractor extractor(*compiled, solution, signature);
    outcome.controller = extractor.run();
  }
  // Read the counters last so extraction work is included.
  outcome.bdd_stats = manager.stats();
  outcome.peak_bdd_nodes = outcome.bdd_stats.peak_nodes;
  return outcome;
}

}  // namespace speccc::synth
