#include "synth/verify.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "automata/gpvw.hpp"
#include "util/diagnostics.hpp"

namespace speccc::synth {

namespace {

/// Product node: (machine state, NBW state).
struct Node {
  int machine;
  int nbw;
  friend auto operator<=>(const Node&, const Node&) = default;
};

struct Edge {
  Word input;
  Node target;
};

/// The product of the machine (inputs nondeterministic) with the NBW of the
/// negated property. Accepting lassos are property violations.
class Product {
 public:
  Product(const MealyMachine& machine, const automata::Buchi& nbw)
      : machine_(machine), nbw_(nbw) {
    n_inputs_ = machine.signature().inputs.size();
    explore();
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Search for a reachable accepting cycle; returns the input word
  /// (prefix + loop) when found.
  std::optional<std::pair<std::vector<Word>, std::size_t>> accepting_lasso() {
    for (std::size_t target = 0; target < nodes_.size(); ++target) {
      if (!nbw_.accepting[static_cast<std::size_t>(nodes_[target].nbw)]) continue;
      const auto prefix = path(0, static_cast<int>(target),
                               /*at_least_one_step=*/target != 0);
      if (!prefix) continue;
      const auto loop = path(static_cast<int>(target), static_cast<int>(target),
                             /*at_least_one_step=*/true);
      if (!loop) continue;
      std::vector<Word> inputs = *prefix;
      const std::size_t loop_start = inputs.size();
      inputs.insert(inputs.end(), loop->begin(), loop->end());
      return std::make_pair(std::move(inputs), loop_start);
    }
    return std::nullopt;
  }

 private:
  int intern(Node node) {
    const auto it = index_.find(node);
    if (it != index_.end()) return it->second;
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(node);
    index_.emplace(node, id);
    edges_.emplace_back();
    work_.push_back(id);
    return id;
  }

  void explore() {
    (void)intern({machine_.initial(), nbw_.initial});
    while (!work_.empty()) {
      const int id = work_.back();
      work_.pop_back();
      const Node node = nodes_[static_cast<std::size_t>(id)];
      for (Word in = 0; in < (Word{1} << n_inputs_); ++in) {
        if (!machine_.has_transition(node.machine, in)) continue;
        const Word out = machine_.output(node.machine, in);
        const int mnext = machine_.next(node.machine, in);
        const ltl::Valuation v = machine_.valuation(in, out);
        for (const automata::Transition& t :
             nbw_.transitions[static_cast<std::size_t>(node.nbw)]) {
          if (!t.label.matches(v)) continue;
          const int tid = intern({mnext, t.target});
          edges_[static_cast<std::size_t>(id)].push_back({in, nodes_[static_cast<std::size_t>(tid)]});
        }
      }
    }
  }

  /// BFS over product edges; returns the input labels of a shortest path.
  std::optional<std::vector<Word>> path(int from, int to, bool at_least_one_step) {
    if (from == to && !at_least_one_step) return std::vector<Word>{};
    std::vector<int> parent(nodes_.size(), -2);
    std::vector<Word> via(nodes_.size(), 0);
    std::vector<int> queue{from};
    parent[static_cast<std::size_t>(from)] = -1;
    std::size_t head = 0;
    while (head < queue.size()) {
      const int cur = queue[head++];
      for (const Edge& e : edges_[static_cast<std::size_t>(cur)]) {
        const int tgt = index_.at(e.target);
        if (tgt == to) {
          std::vector<Word> labels{e.input};
          for (int walk = cur; walk != from;
               walk = parent[static_cast<std::size_t>(walk)]) {
            labels.push_back(via[static_cast<std::size_t>(walk)]);
          }
          std::reverse(labels.begin(), labels.end());
          return labels;
        }
        if (parent[static_cast<std::size_t>(tgt)] == -2) {
          parent[static_cast<std::size_t>(tgt)] = cur;
          via[static_cast<std::size_t>(tgt)] = e.input;
          queue.push_back(tgt);
        }
      }
    }
    return std::nullopt;
  }

  const MealyMachine& machine_;
  const automata::Buchi& nbw_;
  std::size_t n_inputs_ = 0;
  std::vector<Node> nodes_;
  std::map<Node, int> index_;
  std::vector<std::vector<Edge>> edges_;
  std::vector<int> work_;
};

}  // namespace

VerificationResult verify(const MealyMachine& machine, ltl::Formula property) {
  // Guard against alphabet blowup: the product enumerates 2^|inputs|.
  speccc_check(machine.signature().inputs.size() <= 16,
               "verify() enumerates inputs explicitly; signature too large");

  const automata::Buchi negated = automata::ltl_to_nbw(ltl::lnot(property));
  Product product(machine, negated);

  VerificationResult result;
  result.product_states = product.size();
  const auto lasso = product.accepting_lasso();
  if (!lasso) {
    result.holds = true;
    return result;
  }
  CounterExample cex{lasso->first, lasso->second,
                     machine.lasso({lasso->first.begin(),
                                    lasso->first.begin() +
                                        static_cast<std::ptrdiff_t>(lasso->second)},
                                   {lasso->first.begin() +
                                        static_cast<std::ptrdiff_t>(lasso->second),
                                    lasso->first.end()})};
  result.holds = false;
  result.counterexample = std::move(cex);
  return result;
}

std::vector<TestCase> transition_tour(const MealyMachine& machine) {
  const std::size_t n_inputs = machine.signature().inputs.size();
  const Word input_count = Word{1} << n_inputs;

  // Shortest input word reaching every state (BFS from the initial state).
  std::vector<std::vector<Word>> reach_word(machine.num_states());
  std::vector<bool> reached(machine.num_states(), false);
  std::queue<int> queue;
  reached[static_cast<std::size_t>(machine.initial())] = true;
  queue.push(machine.initial());
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop();
    for (Word in = 0; in < input_count; ++in) {
      if (!machine.has_transition(cur, in)) continue;
      const int next = machine.next(cur, in);
      if (!reached[static_cast<std::size_t>(next)]) {
        reached[static_cast<std::size_t>(next)] = true;
        reach_word[static_cast<std::size_t>(next)] =
            reach_word[static_cast<std::size_t>(cur)];
        reach_word[static_cast<std::size_t>(next)].push_back(in);
        queue.push(next);
      }
    }
  }

  // One test case per reachable state: drive there, then exercise every
  // outgoing transition in sequence, greedily chaining transitions that
  // stay within the current case.
  std::vector<TestCase> suite;
  for (int s = 0; s < static_cast<int>(machine.num_states()); ++s) {
    if (!reached[static_cast<std::size_t>(s)]) continue;
    for (Word in = 0; in < input_count; ++in) {
      if (!machine.has_transition(s, in)) continue;
      TestCase test;
      test.inputs = reach_word[static_cast<std::size_t>(s)];
      test.inputs.push_back(in);
      // Expected outputs by replaying the machine.
      int state = machine.initial();
      for (Word step : test.inputs) {
        test.expected_outputs.push_back(machine.output(state, step));
        state = machine.next(state, step);
      }
      suite.push_back(std::move(test));
    }
  }
  return suite;
}

}  // namespace speccc::synth
