// Mealy machines: the controllers produced by synthesis (paper Fig. 1's
// final artifact) and the witnesses of specification consistency.
//
// Inputs and outputs are bit-vectors over the proposition lists in the
// machine's signature, encoded as masks (bit b = proposition index b).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ltl/trace.hpp"

namespace speccc::synth {

/// Input/output proposition signature shared by all synthesis engines.
struct IoSignature {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};

using Word = std::uint32_t;  // valuation mask over a proposition list

/// Deterministic Mealy machine: transition(state, input) = (output, next).
class MealyMachine {
 public:
  MealyMachine() = default;
  explicit MealyMachine(IoSignature signature)
      : signature_(std::move(signature)) {}

  [[nodiscard]] const IoSignature& signature() const { return signature_; }
  [[nodiscard]] std::size_t num_states() const { return next_.size(); }
  [[nodiscard]] int initial() const { return 0; }

  /// Append a state; returns its index. Transitions default to unset.
  int add_state();

  void set_transition(int state, Word input, Word output, int next);
  [[nodiscard]] bool has_transition(int state, Word input) const;
  /// All transitions out of `state`, keyed by input word (ordered map, so
  /// iteration is deterministic). The cache snapshot serializer walks this
  /// to persist synthesized controllers byte-stably.
  [[nodiscard]] const std::map<Word, std::pair<Word, int>>& transitions(
      int state) const {
    return next_[static_cast<std::size_t>(state)];
  }
  [[nodiscard]] Word output(int state, Word input) const;
  [[nodiscard]] int next(int state, Word input) const;

  /// Run the machine on an input sequence; returns the produced combined
  /// valuations (inputs + outputs per step).
  [[nodiscard]] std::vector<ltl::Valuation> run(const std::vector<Word>& inputs) const;

  /// Drive the machine with a looping input word until the joint
  /// (machine state, input position) configuration repeats, producing an
  /// ultimately periodic combined trace. This is how tests check that a
  /// synthesized controller actually satisfies the specification: the
  /// returned lasso feeds ltl::evaluate.
  [[nodiscard]] ltl::Lasso lasso(const std::vector<Word>& input_prefix,
                                 const std::vector<Word>& input_loop) const;

  /// Valuation of a combined step from masks.
  [[nodiscard]] ltl::Valuation valuation(Word input, Word output) const;

 private:
  IoSignature signature_;
  std::vector<std::map<Word, std::pair<Word, int>>> next_;
};

}  // namespace speccc::synth
