#include "synth/mealy.hpp"

#include "util/diagnostics.hpp"

namespace speccc::synth {

int MealyMachine::add_state() {
  next_.emplace_back();
  return static_cast<int>(next_.size()) - 1;
}

void MealyMachine::set_transition(int state, Word input, Word output, int next) {
  speccc_check(state >= 0 && static_cast<std::size_t>(state) < next_.size(),
               "state out of range");
  speccc_check(next >= 0 && static_cast<std::size_t>(next) < next_.size(),
               "successor out of range");
  next_[static_cast<std::size_t>(state)][input] = {output, next};
}

bool MealyMachine::has_transition(int state, Word input) const {
  return next_[static_cast<std::size_t>(state)].count(input) > 0;
}

Word MealyMachine::output(int state, Word input) const {
  const auto& row = next_[static_cast<std::size_t>(state)];
  const auto it = row.find(input);
  speccc_check(it != row.end(), "missing transition");
  return it->second.first;
}

int MealyMachine::next(int state, Word input) const {
  const auto& row = next_[static_cast<std::size_t>(state)];
  const auto it = row.find(input);
  speccc_check(it != row.end(), "missing transition");
  return it->second.second;
}

ltl::Valuation MealyMachine::valuation(Word input, Word output) const {
  ltl::Valuation v;
  for (std::size_t b = 0; b < signature_.inputs.size(); ++b) {
    if ((input >> b) & 1) v.insert(signature_.inputs[b]);
  }
  for (std::size_t b = 0; b < signature_.outputs.size(); ++b) {
    if ((output >> b) & 1) v.insert(signature_.outputs[b]);
  }
  return v;
}

std::vector<ltl::Valuation> MealyMachine::run(const std::vector<Word>& inputs) const {
  std::vector<ltl::Valuation> out;
  int state = initial();
  for (Word in : inputs) {
    const Word o = output(state, in);
    out.push_back(valuation(in, o));
    state = next(state, in);
  }
  return out;
}

ltl::Lasso MealyMachine::lasso(const std::vector<Word>& input_prefix,
                               const std::vector<Word>& input_loop) const {
  speccc_check(!input_loop.empty(), "input loop must be non-empty");
  std::vector<ltl::Valuation> steps;
  int state = initial();
  for (Word in : input_prefix) {
    const Word o = output(state, in);
    steps.push_back(valuation(in, o));
    state = next(state, in);
  }
  // Iterate the loop until (state, loop position) repeats.
  std::map<std::pair<int, std::size_t>, std::size_t> seen;
  std::size_t loop_pos = 0;
  std::size_t loop_start = steps.size();
  for (;;) {
    const auto key = std::make_pair(state, loop_pos);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      loop_start = it->second;
      break;
    }
    seen.emplace(key, steps.size());
    const Word in = input_loop[loop_pos];
    const Word o = output(state, in);
    steps.push_back(valuation(in, o));
    state = next(state, in);
    loop_pos = (loop_pos + 1) % input_loop.size();
  }
  return ltl::Lasso(std::move(steps), loop_start);
}

}  // namespace speccc::synth
