// Top-level synthesis driver: the SpecCC stand-in for G4LTL (Section V-A).
//
// Given translated requirements and an input/output partition, decides
// realizability -- the paper's notion of specification consistency -- and
// optionally extracts a Mealy controller witnessing it.
//
// Engine selection: when every requirement lies in the monitorable pattern
// fragment (everything the Section IV translator emits), the symbolic
// monitor-composition engine decides the game exactly at Table I scale;
// otherwise the explicit bounded-synthesis engine handles full LTL on small
// signatures.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ltl/formula.hpp"
#include "synth/bounded.hpp"
#include "synth/mealy.hpp"
#include "synth/symbolic_engine.hpp"

namespace speccc::synth {

enum class Engine { kAuto, kSymbolic, kBounded };

struct SynthesisOptions {
  Engine engine = Engine::kAuto;
  BoundedOptions bounded;
  SymbolicOptions symbolic;
};

struct SynthesisResult {
  Realizability verdict = Realizability::kUnknown;
  Engine engine_used = Engine::kAuto;
  /// Name of the core::Substrate that produced the verdict ("tableau",
  /// "bounded", "symbolic"); set by the substrate layer and by
  /// synthesize(). Non-canonical diagnostic.
  std::string substrate_used;
  /// Wall-clock seconds of the realizability check (Table I's time column).
  double seconds = 0.0;
  /// Engine statistics (whichever engine ran).
  std::size_t state_bits = 0;        // symbolic: monitor state bits
  std::size_t ucw_states = 0;        // bounded: UCW size
  std::size_t game_positions = 0;    // bounded: peak arena size
  std::size_t peak_bdd_nodes = 0;    // symbolic
  bdd::Stats bdd_stats;              // symbolic: manager counters
  int iterations = 0;                // fixpoint rounds / final k
  std::optional<MealyMachine> controller;

  [[nodiscard]] bool realizable() const {
    return verdict == Realizability::kRealizable;
  }
};

/// Decide realizability of the conjunction of `requirements`.
[[nodiscard]] SynthesisResult synthesize(const std::vector<ltl::Formula>& requirements,
                                         const IoSignature& signature,
                                         const SynthesisOptions& options = {});

}  // namespace speccc::synth
