// The scalable realizability engine: pattern monitors + symbolic
// generalized-Buechi games.
//
// This is the configuration that checks Table I's specifications (20-30 I/O
// variables): every translated requirement compiles to a deterministic
// monitor (synth/monitors.hpp), the monitors compose into one BDD game, and
// the fixpoint of game/symbolic.hpp decides the winner exactly (generalized
// Buechi games are determined, so "system loses" == "specification
// unrealizable" with no bound escalation needed).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "bdd/bdd.hpp"
#include "ltl/formula.hpp"
#include "synth/bounded.hpp"
#include "synth/mealy.hpp"

namespace speccc::synth {

struct SymbolicOptions {
  bool extract = false;  // build a Mealy controller (enumerates inputs!)
  std::size_t max_extract_inputs = 12;  // extraction cap on |inputs|
  /// Cooperative cancellation, polled once per game fixpoint round;
  /// returning true raises util::CancelledError. Null is never cancelled.
  std::function<bool()> cancelled;
};

struct SymbolicOutcome {
  Realizability verdict = Realizability::kUnknown;
  std::size_t state_bits = 0;
  std::size_t buchi_count = 0;
  std::size_t peak_bdd_nodes = 0;
  int fixpoint_iterations = 0;
  /// Engine counters of the run's (per-call, single-threaded) manager:
  /// arena peak, unique-table hits, computed-cache hits/misses/evictions.
  bdd::Stats bdd_stats;
  std::optional<MealyMachine> controller;
};

/// Decide realizability of the conjunction of `spec` with the symbolic
/// engine. Returns nullopt when some formula is outside the monitorable
/// fragment (caller falls back to bounded synthesis).
[[nodiscard]] std::optional<SymbolicOutcome> symbolic_synthesize(
    const std::vector<ltl::Formula>& spec, const IoSignature& signature,
    const SymbolicOptions& options = {});

}  // namespace speccc::synth
