// Lexicon and morphology for the structured-English subset (Section IV-B).
//
// This (together with the grammar parser in syntax.hpp) is the stand-in for
// the Stanford NLP parser: the paper restricts requirements to a controlled
// grammar, so a purpose-built lexicon + morphological analyzer + rule tagger
// produce exactly the grammatical ingredients the translator needs.
//
// The built-in vocabulary covers the CARA, TELEPROMISE and rescue-robot
// corpora plus the closed-class words of the grammar; open-class words
// outside the lexicon are categorized by suffix heuristics, so reasonable
// unseen requirements still parse.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/digest.hpp"

namespace speccc::nlp {

enum class Pos {
  kNoun,
  kVerb,         // lexical verb (any inflection; lemma provided separately)
  kBe,           // is/are/was/were/be/been/being
  kModal,        // shall should will would can could must may
  kAdjective,
  kAdverb,       // includes the grammar's modifiers (eventually, always...)
  kDeterminer,   // the a an ...
  kSubordinator, // if when whenever once while after before until next
  kConjunction,  // and or
  kPreposition,  // in at to of ...
  kNegation,     // not, no
  kPronoun,      // it
  kNumber,       // 3, 180, ...
  kTimeUnit,     // second(s), minute(s), tick(s)
  kMarker,       // discourse fillers ignored by the grammar: then, also
  kComma,
  kPeriod,
  kUnknown,
};

[[nodiscard]] const char* pos_name(Pos pos);

/// Verb tense surface form.
enum class VerbForm { kBase, kThirdPerson, kPast, kPastParticiple, kGerund };

struct VerbAnalysis {
  std::string lemma;
  VerbForm form = VerbForm::kBase;
};

class Lexicon {
 public:
  /// The built-in vocabulary (CARA + TELEPROMISE + robot + closed classes).
  static Lexicon builtin();

  /// Empty lexicon (tests compose their own).
  Lexicon() = default;

  void add(const std::string& word, Pos pos);
  void add_verb(const std::string& lemma);
  /// Register an irregular inflection (e.g. "lost" -> lemma "lose").
  void add_irregular_verb(const std::string& form, const std::string& lemma,
                          VerbForm verb_form);

  /// All parts of speech this surface form can take (lexicon + morphology).
  [[nodiscard]] std::set<Pos> lookup(const std::string& word) const;

  /// Morphological analysis of a (possibly inflected) verb form; nullopt if
  /// the word cannot be a verb.
  [[nodiscard]] std::optional<VerbAnalysis> analyze_verb(const std::string& word) const;

  /// Time units to seconds multiplier (second=1, minute=60, ...); nullopt
  /// when not a time unit.
  [[nodiscard]] std::optional<unsigned> time_unit_seconds(const std::string& word) const;

  [[nodiscard]] bool known(const std::string& word) const;

  /// Stable content fingerprint of the vocabulary (words with their part
  /// of speech sets, verb lemmas, irregular inflections), independent of
  /// insertion order, process, and platform. Two lexicons parse every
  /// sentence identically when their fingerprints match (up to digest
  /// collision), so this is the level-1 cache invalidation key: a cached
  /// sentence parse is keyed by (normalized text, lexicon fingerprint) and
  /// any vocabulary edit changes the key rather than poisoning old entries
  /// (see cache/store.hpp).
  [[nodiscard]] util::Digest fingerprint() const;

 private:
  std::unordered_map<std::string, std::set<Pos>> words_;
  std::set<std::string> verb_lemmas_;
  std::unordered_map<std::string, VerbAnalysis> irregular_;
};

}  // namespace speccc::nlp
