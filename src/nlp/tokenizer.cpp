#include "nlp/tokenizer.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace speccc::nlp {

std::vector<std::string> tokenize(const std::string& sentence) {
  std::vector<std::string> out;
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (char c : sentence) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      current.push_back(c);
    } else if (c == ',') {
      flush();
      out.emplace_back(",");
    } else if (c == '.') {
      flush();
      out.emplace_back(".");
    } else {
      // Whitespace, hyphens, underscores, quotes: word separators.
      flush();
    }
  }
  flush();
  return out;
}

namespace {

Pos pick_preferred(const std::set<Pos>& candidates, Pos preferred) {
  if (candidates.count(preferred) > 0) return preferred;
  return *candidates.begin();
}

}  // namespace

std::vector<Token> tag(const std::vector<std::string>& words,
                       const Lexicon& lexicon) {
  std::vector<Token> out;
  out.reserve(words.size());

  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::string raw = words[i];
    const std::string w = util::to_lower(raw);
    Token token;
    token.text = w;
    token.lemma = w;
    token.capitalized =
        i > 0 && !raw.empty() && std::isupper(static_cast<unsigned char>(raw[0])) != 0;
    if (w == ",") {
      token.pos = Pos::kComma;
      out.push_back(token);
      continue;
    }
    if (w == ".") {
      token.pos = Pos::kPeriod;
      out.push_back(token);
      continue;
    }

    const std::set<Pos> candidates = lexicon.lookup(w);
    const Pos prev = out.empty() ? Pos::kUnknown : out.back().pos;

    Pos chosen;
    if (candidates.count(Pos::kBe) > 0) {
      // Forms of "be" are unambiguous copulas in the structured grammar.
      chosen = Pos::kBe;
    } else if (candidates.size() == 1) {
      chosen = *candidates.begin();
    } else if (prev == Pos::kDeterminer || prev == Pos::kAdjective) {
      // After a determiner or attributive adjective, prefer the nominal
      // reading ("the control", "a valid pressure").
      chosen = pick_preferred(candidates, Pos::kNoun);
    } else if (prev == Pos::kBe) {
      // Copular complement: prefer adjective ("is available"), else a
      // passive participle ("is terminated").
      if (candidates.count(Pos::kAdjective) > 0) {
        chosen = Pos::kAdjective;
      } else {
        chosen = pick_preferred(candidates, Pos::kVerb);
      }
    } else if (prev == Pos::kModal) {
      // After a modal the verb reading wins ("can start", "should sound").
      chosen = pick_preferred(candidates, Pos::kVerb);
    } else if (prev == Pos::kNumber) {
      chosen = pick_preferred(candidates, Pos::kTimeUnit);
    } else if (candidates.count(Pos::kNoun) > 0 &&
               candidates.count(Pos::kVerb) > 0) {
      // Noun/verb ambiguous with no deciding context: nouns dominate in the
      // corpus ("control mode", "power supply"); verbs are recovered by the
      // clause parser when a predicate is syntactically required.
      chosen = Pos::kNoun;
    } else {
      chosen = *candidates.begin();
    }

    token.pos = chosen;
    if (chosen == Pos::kVerb) {
      const auto analysis = lexicon.analyze_verb(w);
      if (analysis.has_value()) {
        token.lemma = analysis->lemma;
        token.verb_form = analysis->form;
      }
    }
    out.push_back(token);
  }
  return out;
}

std::vector<Token> analyze(const std::string& sentence, const Lexicon& lexicon) {
  return tag(tokenize(sentence), lexicon);
}

}  // namespace speccc::nlp
