#include "nlp/dependency.hpp"

#include "util/strings.hpp"

namespace speccc::nlp {

namespace {

void clause_dependencies(const Clause& clause, std::vector<Dependency>& out) {
  const Predicate& pred = clause.predicate;
  const std::string verb =
      pred.verb_lemma.empty() ? std::string("be") : pred.verb_lemma;
  const char* subj_type =
      pred.kind == PredicateKind::kPassive ? "nsubjpass" : "nsubj";

  for (std::size_t i = 0; i < clause.subjects.size(); ++i) {
    const NounPhrase& np = clause.subjects[i];
    const std::string name = np.pronoun ? "it" : np.joined();
    out.push_back({subj_type, verb, name});
    // Attributive adjectives inside the noun phrase (amod), excluding
    // proper-name components ("Air Ok signal").
    for (const NpWord& w : np.words) {
      if (w.pos == Pos::kAdjective && !w.capitalized) {
        out.push_back({"amod", name, w.text});
      }
    }
    if (i > 0) {
      const std::string type = clause.subject_conjunction == "or"
                                   ? "conj_or"
                                   : "conj_and";
      out.push_back({type, clause.subjects.front().joined(), name});
    }
  }
  for (const std::string& c : pred.complements) {
    out.push_back({"acomp", verb, c});
  }
  if (pred.negated) out.push_back({"neg", verb, "not"});
  if (!clause.modifier.empty()) out.push_back({"advmod", verb, clause.modifier});
}

void group_dependencies(const ClauseGroup& group, std::vector<Dependency>& out) {
  for (const auto& [conn, clause] : group.clauses) {
    clause_dependencies(clause, out);
  }
}

void clause_subject_dependents(
    const Clause& clause, std::map<std::string, std::set<std::string>>& out) {
  for (const NounPhrase& np : clause.subjects) {
    if (np.pronoun) continue;
    // The subject name excludes lower-case attributive adjectives (they are
    // modifiers, not name components) -- mirroring the appendix, where
    // "a valid blood pressure" yields subject blood_pressure with dependent
    // "valid" but "Air Ok signal" stays air_ok_signal.
    std::vector<std::string> name_words;
    std::set<std::string> dependents;
    for (const NpWord& w : np.words) {
      if (w.pos == Pos::kAdjective && !w.capitalized) {
        dependents.insert(w.text);
      } else {
        name_words.push_back(w.text);
      }
    }
    if (name_words.empty()) continue;  // pure-adjective phrase: no subject
    const std::string name = util::join(name_words, "_");
    auto& set = out[name];
    set.insert(dependents.begin(), dependents.end());
    for (const std::string& c : clause.predicate.complements) set.insert(c);
  }
}

}  // namespace

std::vector<Dependency> dependencies(const Sentence& sentence) {
  std::vector<Dependency> out;
  for (const auto& group : sentence.conditions) group_dependencies(group, out);
  group_dependencies(sentence.main, out);
  if (sentence.until.has_value()) group_dependencies(*sentence.until, out);
  return out;
}

std::map<std::string, std::set<std::string>> subject_dependents(
    const Sentence& sentence) {
  std::map<std::string, std::set<std::string>> out;
  const auto visit_group = [&out](const ClauseGroup& group) {
    for (const auto& [conn, clause] : group.clauses) {
      clause_subject_dependents(clause, out);
    }
  };
  for (const auto& group : sentence.conditions) visit_group(group);
  visit_group(sentence.main);
  if (sentence.until.has_value()) visit_group(*sentence.until);
  return out;
}

}  // namespace speccc::nlp
