// Recursive-descent parser for the paper's structured-English grammar
// (Section IV-B):
//
//   sentence   ::= (subclause,)* clauses (,subclause)*
//   subclause  ::= subordinator clauses
//   clauses    ::= clause [, conjunction clause]*
//   clause     ::= [modifier] subject predicate [constraint]
//   ...
//
// The parser produces the syntax tree of Fig. 2. Conventions extracted from
// the paper's appendix:
//   * comma segments led by a conjunction continue the current clause group
//     ("If a, and b, and c, d" groups a,b,c as the antecedent);
//   * a conjunction segment without a predicate coordinates subjects across
//     the comma ("the arterial line, or pulse wave or cuff is lost");
//   * a subordinator may occur mid-segment ("... is enabled until it is
//     pressed", "... will be operational whenever ...");
//   * "next" marks the clause it precedes rather than opening a group;
//   * capitalized mid-sentence words are proper names and stay part of the
//     subject ("Air Ok signal"), while lower-case attributive adjectives are
//     modifiers subject to semantic reasoning ("a valid blood pressure").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nlp/lexicon.hpp"
#include "nlp/tokenizer.hpp"

namespace speccc::nlp {

/// A word inside a noun phrase, with enough detail for semantic reasoning.
struct NpWord {
  std::string text;
  Pos pos = Pos::kNoun;
  bool capitalized = false;  // proper-name evidence (mid-sentence uppercase)
};

struct NounPhrase {
  std::vector<NpWord> words;
  bool pronoun = false;  // "it": resolved against the main-clause subject

  [[nodiscard]] std::string joined() const;  // "auto_control_mode"
};

struct TimeConstraint {
  unsigned value = 0;          // as written ("in 3 seconds" -> 3)
  unsigned unit_seconds = 1;   // seconds per unit
  [[nodiscard]] unsigned total_seconds() const { return value * unit_seconds; }
};

enum class PredicateKind {
  kCopula,       // be/remain + adjective complement(s)
  kPassive,      // be + past participle
  kProgressive,  // be + gerund (active reading: "is running")
  kActive,       // lexical verb, possibly with an object
  kPreposition,  // be + preposition + noun phrase ("is in room 1")
};

struct Predicate {
  PredicateKind kind = PredicateKind::kCopula;
  std::string verb_lemma;                  // "" for pure copula
  std::vector<std::string> complements;    // adjectives/adverbs (kCopula)
  std::string preposition;                 // kPreposition
  /// kPreposition / kActive objects; prepositional objects may coordinate
  /// ("is in room 1 or room 2"), joined by object_conjunction.
  std::vector<NounPhrase> objects;
  std::string object_conjunction;  // "and"/"or" when objects.size() > 1
  std::vector<std::string> modals;
  bool negated = false;
  bool future = false;  // "will"/"would": the paper maps future tense to F
};

struct Clause {
  std::string modifier;  // "eventually", "always", ... or ""
  std::vector<NounPhrase> subjects;
  std::string subject_conjunction;  // "and"/"or" when subjects.size() > 1
  Predicate predicate;
  std::optional<TimeConstraint> constraint;
  bool next_marked = false;  // clause prefixed by "next"
};

/// A subordinate or main clause group; clauses carry the connective linking
/// them to the previous clause in the group ("" for the first).
struct ClauseGroup {
  std::string subordinator;  // "" for the main group
  std::vector<std::pair<std::string, Clause>> clauses;
};

struct Sentence {
  std::string text;
  std::vector<ClauseGroup> conditions;  // if/when/whenever/once/while/after
  ClauseGroup main;
  std::optional<ClauseGroup> until;  // trailing until-subclause
};

/// Parse one requirement sentence. Throws util::ParseError when the sentence
/// falls outside the structured grammar (no predicate, empty subject, ...).
[[nodiscard]] Sentence parse_sentence(const std::string& text, const Lexicon& lexicon);

/// Render the Fig. 2-style syntax tree of a parsed sentence (for the
/// examples and the Fig. 2 reproduction).
[[nodiscard]] std::string syntax_tree(const Sentence& sentence);

}  // namespace speccc::nlp
