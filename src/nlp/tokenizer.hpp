// Tokenization and context-rule POS tagging for requirement sentences.
#pragma once

#include <string>
#include <vector>

#include "nlp/lexicon.hpp"

namespace speccc::nlp {

struct Token {
  std::string text;   // lower-cased surface form
  std::string lemma;  // verb lemma when pos == kVerb, else == text
  Pos pos = Pos::kUnknown;
  VerbForm verb_form = VerbForm::kBase;  // meaningful when pos == kVerb
  /// Word was capitalized mid-sentence: proper-name evidence ("Air Ok").
  bool capitalized = false;
};

/// Split a requirement sentence into word / punctuation tokens, preserving
/// case. Hyphens and underscores inside words split into separate words
/// ("auto-control" -> "auto", "control"), matching the paper's treatment of
/// multi-word subjects that are later re-joined with '_'.
[[nodiscard]] std::vector<std::string> tokenize(const std::string& sentence);

/// Assign parts of speech with the lexicon plus context disambiguation
/// rules (determiner => following word is nominal; "be" + participle =>
/// passive verb; number + unit => time constraint; etc.).
[[nodiscard]] std::vector<Token> tag(const std::vector<std::string>& words,
                                     const Lexicon& lexicon);

/// Convenience: tokenize + tag.
[[nodiscard]] std::vector<Token> analyze(const std::string& sentence,
                                         const Lexicon& lexicon);

}  // namespace speccc::nlp
