#include "nlp/syntax.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/diagnostics.hpp"
#include "util/strings.hpp"

namespace speccc::nlp {

std::string NounPhrase::joined() const {
  std::vector<std::string> parts;
  for (const NpWord& w : words) parts.push_back(w.text);
  return util::join(parts, "_");
}

namespace {

using Tokens = std::vector<Token>;

bool is_condition_subordinator(const std::string& w) {
  return w == "if" || w == "when" || w == "whenever" || w == "once" ||
         w == "while" || w == "after" || w == "before";
}

/// Does the token start a predicate? (modal, be-form, or an inflected
/// third-person lexical verb like "remains"/"enters").
bool starts_predicate(const Token& t) {
  if (t.pos == Pos::kModal || t.pos == Pos::kBe) return true;
  return t.pos == Pos::kVerb && t.verb_form == VerbForm::kThirdPerson &&
         t.lemma != "be";
}

bool has_predicate(const Tokens& segment) {
  return std::any_of(segment.begin(), segment.end(), starts_predicate);
}

[[noreturn]] void fail(const std::string& text, const std::string& why) {
  throw util::ParseError("ungrammatical requirement: " + why + " in \"" + text +
                         "\"");
}

/// Parse one clause from a token span.
class ClauseParser {
 public:
  ClauseParser(const Tokens& tokens, const std::string& text)
      : tokens_(tokens), text_(text) {}

  Clause run() {
    Clause clause;
    // Leading "next" marker ("next manual mode is started").
    if (peek_text() == "next") {
      clause.next_marked = true;
      ++pos_;
    }
    // Leading modifier adverb.
    if (peek(Pos::kAdverb) && is_modifier(peek_text())) {
      clause.modifier = peek_text();
      ++pos_;
    }
    if (peek_text() == "next") {  // "eventually next ..." (rare order)
      clause.next_marked = true;
      ++pos_;
    }

    parse_subjects(clause);
    parse_predicate(clause);
    parse_constraint(clause);
    if (pos_ < tokens_.size()) {
      fail(text_, "unexpected trailing words after the predicate");
    }
    return clause;
  }

 private:
  static bool is_modifier(const std::string& w) {
    return w == "eventually" || w == "always" || w == "globally" ||
           w == "sometimes" || w == "immediately";
  }

  bool peek(Pos pos) const {
    return pos_ < tokens_.size() && tokens_[pos_].pos == pos;
  }
  std::string peek_text() const {
    return pos_ < tokens_.size() ? tokens_[pos_].text : "";
  }

  void parse_subjects(Clause& clause) {
    for (;;) {
      NounPhrase np = parse_noun_phrase();
      if (np.words.empty() && !np.pronoun) {
        fail(text_, "missing subject");
      }
      clause.subjects.push_back(std::move(np));
      // Subject coordination only before the predicate.
      if (peek(Pos::kConjunction) && pos_ + 1 < tokens_.size() &&
          !starts_predicate(tokens_[pos_ + 1])) {
        clause.subject_conjunction = peek_text();
        ++pos_;
        continue;
      }
      break;
    }
  }

  NounPhrase parse_noun_phrase() {
    NounPhrase np;
    for (; pos_ < tokens_.size(); ++pos_) {
      const Token& t = tokens_[pos_];
      if (t.pos == Pos::kDeterminer || t.pos == Pos::kMarker) continue;
      if (t.pos == Pos::kPronoun) {
        np.pronoun = true;
        ++pos_;
        break;
      }
      if (starts_predicate(t) || t.pos == Pos::kConjunction) break;
      if (t.pos == Pos::kNoun || t.pos == Pos::kAdjective ||
          t.pos == Pos::kNumber || t.pos == Pos::kVerb) {
        // Verbs here are name components ("terminate auto control button").
        np.words.push_back({t.text, t.pos, t.capitalized});
        continue;
      }
      break;
    }
    return np;
  }

  void parse_predicate(Clause& clause) {
    Predicate& pred = clause.predicate;
    if (pos_ >= tokens_.size()) fail(text_, "missing predicate");

    // Modals.
    while (peek(Pos::kModal)) {
      pred.modals.push_back(peek_text());
      if (peek_text() == "will" || peek_text() == "would") pred.future = true;
      ++pos_;
    }

    // Lexical copula-like verb ("remains low") or active verb.
    if (peek(Pos::kVerb) && tokens_[pos_].lemma != "be") {
      const Token verb = tokens_[pos_];
      ++pos_;
      if (peek(Pos::kNegation)) {
        pred.negated = true;
        ++pos_;
      }
      if (peek(Pos::kAdjective) || peek(Pos::kAdverb)) {
        // "remains low": copular complement.
        pred.kind = PredicateKind::kCopula;
        pred.verb_lemma = verb.lemma;
        collect_complements(pred);
        return;
      }
      // Active verb, optional object noun phrase.
      pred.kind = PredicateKind::kActive;
      pred.verb_lemma = verb.lemma;
      if (pos_ < tokens_.size() && !peek(Pos::kPreposition)) {
        NounPhrase object = parse_noun_phrase();
        if (!object.words.empty()) pred.objects.push_back(std::move(object));
      }
      swallow_particle();
      return;
    }

    // Copula chain: [not] be [not] (participle | adjective | gerund |
    // prep NP). Negation may precede the copula after a modal ("must not
    // be closed") or follow it ("is not valid").
    if (peek(Pos::kNegation) && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].pos == Pos::kBe) {
      pred.negated = true;
      ++pos_;
    }
    if (!peek(Pos::kBe)) fail(text_, "missing predicate verb");
    ++pos_;
    while (peek(Pos::kBe)) ++pos_;  // "will be", "can be"
    if (peek(Pos::kNegation)) {
      pred.negated = true;
      ++pos_;
    }
    while (peek(Pos::kBe)) ++pos_;

    if (peek(Pos::kPreposition)) {
      // "is in room 1", with optional coordination: "is in room 1 or room 2".
      pred.kind = PredicateKind::kPreposition;
      pred.preposition = peek_text();
      ++pos_;
      for (;;) {
        NounPhrase object = parse_noun_phrase();
        if (object.words.empty()) fail(text_, "missing preposition object");
        pred.objects.push_back(std::move(object));
        if (peek(Pos::kConjunction) && pos_ + 1 < tokens_.size() &&
            !starts_predicate(tokens_[pos_ + 1])) {
          pred.object_conjunction = peek_text();
          ++pos_;
          // Optionally repeated preposition: "in room 1 or in room 2".
          if (peek(Pos::kPreposition)) ++pos_;
          continue;
        }
        break;
      }
      return;
    }
    if (peek(Pos::kAdjective) || peek(Pos::kAdverb)) {
      pred.kind = PredicateKind::kCopula;
      collect_complements(pred);
      return;
    }
    if (peek(Pos::kVerb)) {
      const Token verb = tokens_[pos_];
      ++pos_;
      if (verb.verb_form == VerbForm::kGerund) {
        pred.kind = PredicateKind::kProgressive;
      } else {
        pred.kind = PredicateKind::kPassive;
      }
      pred.verb_lemma = verb.lemma;
      swallow_particle();
      return;
    }
    fail(text_, "unsupported predicate form");
  }

  void collect_complements(Predicate& pred) {
    while (peek(Pos::kAdjective) || peek(Pos::kAdverb)) {
      pred.complements.push_back(peek_text());
      ++pos_;
    }
    swallow_particle();
  }

  /// Trailing particle of a phrasal verb: a preposition or particle-like
  /// adverbial directly after the verb with nothing but a time constraint
  /// (or nothing) following ("is plugged in", "is powered on", "is turned
  /// off", "is turned on in 3 seconds").
  void swallow_particle() {
    static const std::set<std::string> kParticles = {"on", "off", "in",
                                                     "out", "up",  "down"};
    const bool particle_like =
        peek(Pos::kPreposition) ||
        ((peek(Pos::kAdjective) || peek(Pos::kAdverb)) &&
         kParticles.count(peek_text()) > 0);
    if (!particle_like) return;
    // "in 3 seconds" is a constraint, never a particle.
    if (peek_text() == "in" && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].pos == Pos::kNumber) {
      return;
    }
    const bool at_end = pos_ + 1 >= tokens_.size();
    const bool before_constraint =
        pos_ + 2 < tokens_.size() && tokens_[pos_ + 1].pos == Pos::kPreposition &&
        tokens_[pos_ + 1].text == "in" && tokens_[pos_ + 2].pos == Pos::kNumber;
    if (at_end || before_constraint) ++pos_;
  }

  void parse_constraint(Clause& clause) {
    // "in t seconds".
    if (peek(Pos::kPreposition) && peek_text() == "in" &&
        pos_ + 1 < tokens_.size() && tokens_[pos_ + 1].pos == Pos::kNumber) {
      ++pos_;
      TimeConstraint c;
      c.value = static_cast<unsigned>(std::stoul(tokens_[pos_].text));
      ++pos_;
      if (peek(Pos::kTimeUnit)) {
        // Unit multiplier resolved against the lexicon by the caller; we
        // inline the standard units here to keep the parser self-contained.
        const std::string u = peek_text();
        if (u == "minute" || u == "minutes") c.unit_seconds = 60;
        else if (u == "hour" || u == "hours") c.unit_seconds = 3600;
        else c.unit_seconds = 1;
        ++pos_;
      }
      clause.constraint = c;
    }
  }

  const Tokens& tokens_;
  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Split the clause-internal coordination: "a is issued and b is provided".
/// Returns (connective, clause-token-span) pairs.
std::vector<std::pair<std::string, Tokens>> split_coordinated(const Tokens& tokens) {
  std::vector<std::pair<std::string, Tokens>> out;
  Tokens current;
  std::string connective;
  bool predicate_seen = false;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.pos == Pos::kConjunction && predicate_seen) {
      // Conjunction after a complete predicate starts a new clause -- but
      // only when a predicate actually follows; otherwise it coordinates
      // objects or complements ("is in room 1 or room 2").
      const bool clause_follows =
          std::any_of(tokens.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                      tokens.end(), starts_predicate);
      if (clause_follows) {
        out.push_back({connective, current});
        current.clear();
        connective = t.text;
        predicate_seen = false;
        continue;
      }
    }
    if (starts_predicate(t)) predicate_seen = true;
    current.push_back(t);
  }
  if (!current.empty()) out.push_back({connective, current});
  return out;
}

}  // namespace

Sentence parse_sentence(const std::string& text, const Lexicon& lexicon) {
  Sentence sentence;
  sentence.text = text;

  Tokens tokens = analyze(text, lexicon);
  // Drop the final period.
  while (!tokens.empty() && tokens.back().pos == Pos::kPeriod) tokens.pop_back();
  if (tokens.empty()) fail(text, "empty sentence");

  // 1. Split into comma segments.
  std::vector<Tokens> segments;
  Tokens current;
  for (const Token& t : tokens) {
    if (t.pos == Pos::kComma) {
      if (!current.empty()) segments.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(t);
    }
  }
  if (!current.empty()) segments.push_back(std::move(current));

  // 2. Merge predicate-less conjunction segments into their successor
  //    ("the arterial line, or pulse wave or cuff is lost").
  for (std::size_t i = 0; i + 1 < segments.size();) {
    if (!has_predicate(segments[i]) && !segments[i].empty()) {
      Tokens merged = segments[i];
      segments[i + 1].insert(segments[i + 1].begin(), merged.begin(), merged.end());
      segments.erase(segments.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // 3. Split segments at mid-segment subordinators ("... until it is
  //    pressed", "... whenever the LSTAT is powered on").
  std::vector<Tokens> pieces;
  for (Tokens& segment : segments) {
    Tokens cur;
    bool predicate_seen = false;
    for (const Token& t : segment) {
      if (t.pos == Pos::kSubordinator && t.text != "next" && predicate_seen) {
        pieces.push_back(std::move(cur));
        cur.clear();
        cur.push_back(t);
        predicate_seen = false;
        continue;
      }
      if (starts_predicate(t)) predicate_seen = true;
      cur.push_back(t);
    }
    if (!cur.empty()) pieces.push_back(std::move(cur));
  }

  // 4. Assemble clause groups.
  ClauseGroup* current_group = nullptr;
  // Append the coordinated clauses of `span` to `group`; `lead` is the
  // connective that linked the comma segment to the group ("" for the first
  // segment of a group).
  const auto parse_into = [&](ClauseGroup& group, const Tokens& span,
                              const std::string& lead) {
    bool first_part = true;
    for (auto& [conn, clause_tokens] : split_coordinated(span)) {
      std::string effective;
      if (!group.clauses.empty()) {
        effective = first_part ? (lead.empty() ? "and" : lead)
                               : (conn.empty() ? "and" : conn);
      }
      ClauseParser parser(clause_tokens, text);
      group.clauses.push_back({effective, parser.run()});
      first_part = false;
    }
  };

  bool main_seen = false;
  for (Tokens& piece : pieces) {
    if (piece.empty()) continue;
    std::string connective;
    std::size_t start = 0;
    if (piece[start].pos == Pos::kConjunction) {
      connective = piece[start].text;
      ++start;
    }
    std::string subordinator;
    if (start < piece.size() && piece[start].pos == Pos::kSubordinator &&
        piece[start].text != "next") {
      subordinator = piece[start].text;
      ++start;
    }
    Tokens span(piece.begin() + static_cast<std::ptrdiff_t>(start), piece.end());
    if (span.empty()) fail(text, "empty clause group");

    if (subordinator == "until" || subordinator == "before") {
      ClauseGroup group;
      group.subordinator = subordinator;
      parse_into(group, span, connective);
      sentence.until = std::move(group);
      current_group = &*sentence.until;
      continue;
    }
    if (is_condition_subordinator(subordinator)) {
      sentence.conditions.emplace_back();
      sentence.conditions.back().subordinator = subordinator;
      parse_into(sentence.conditions.back(), span, connective);
      current_group = &sentence.conditions.back();
      continue;
    }
    // No subordinator: continuation of the current group when led by a
    // conjunction and the main clause has not started; otherwise main.
    if (!connective.empty() && current_group != nullptr && !main_seen) {
      parse_into(*current_group, span, connective);
      continue;
    }
    if (!main_seen) {
      parse_into(sentence.main, span, connective);
      main_seen = true;
      current_group = &sentence.main;
      continue;
    }
    // Additional main-clause material after the main group.
    parse_into(sentence.main, span, connective.empty() ? "and" : connective);
  }

  if (sentence.main.clauses.empty()) {
    fail(text, "no main clause");
  }
  return sentence;
}

namespace {

void print_clause(std::ostream& os, const Clause& clause, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (!clause.modifier.empty()) {
    os << pad << "modifier: " << clause.modifier << "\n";
  }
  if (clause.next_marked) os << pad << "marker: next\n";
  for (std::size_t i = 0; i < clause.subjects.size(); ++i) {
    os << pad << "subject: "
       << (clause.subjects[i].pronoun ? "(it)" : clause.subjects[i].joined());
    if (i + 1 < clause.subjects.size()) {
      os << " " << clause.subject_conjunction;
    }
    os << "\n";
  }
  os << pad << "predicate: ";
  const Predicate& p = clause.predicate;
  for (const auto& m : p.modals) os << m << " ";
  switch (p.kind) {
    case PredicateKind::kCopula:
      os << "be" << (p.negated ? " not" : "");
      for (const auto& c : p.complements) os << " " << c;
      break;
    case PredicateKind::kPassive:
      os << "be" << (p.negated ? " not" : "") << " " << p.verb_lemma << "+ed";
      break;
    case PredicateKind::kProgressive:
      os << "be " << p.verb_lemma << "+ing";
      break;
    case PredicateKind::kActive:
      os << p.verb_lemma;
      if (!p.objects.empty()) os << " " << p.objects.front().joined();
      break;
    case PredicateKind::kPreposition:
      os << "be " << p.preposition;
      for (std::size_t i = 0; i < p.objects.size(); ++i) {
        if (i > 0) os << " " << p.object_conjunction;
        os << " " << p.objects[i].joined();
      }
      break;
  }
  os << "\n";
  if (clause.constraint.has_value()) {
    os << pad << "constraint: in " << clause.constraint->value << " x"
       << clause.constraint->unit_seconds << "s\n";
  }
}

void print_group(std::ostream& os, const ClauseGroup& group, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const auto& [conn, clause] : group.clauses) {
    if (!conn.empty()) os << pad << "conjunction: " << conn << "\n";
    os << pad << "clause\n";
    print_clause(os, clause, indent + 1);
  }
}

}  // namespace

std::string syntax_tree(const Sentence& sentence) {
  std::ostringstream os;
  os << "sentence\n";
  for (const auto& group : sentence.conditions) {
    os << "  subclause\n    subordinator: " << group.subordinator << "\n";
    print_group(os, group, 2);
  }
  os << "  clauses\n";
  print_group(os, sentence.main, 2);
  if (sentence.until.has_value()) {
    os << "  subclause\n    subordinator: " << sentence.until->subordinator
       << "\n";
    print_group(os, *sentence.until, 2);
  }
  return os.str();
}

}  // namespace speccc::nlp
