#include "nlp/lexicon.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace speccc::nlp {

const char* pos_name(Pos pos) {
  switch (pos) {
    case Pos::kNoun: return "noun";
    case Pos::kVerb: return "verb";
    case Pos::kBe: return "be";
    case Pos::kModal: return "modal";
    case Pos::kAdjective: return "adjective";
    case Pos::kAdverb: return "adverb";
    case Pos::kDeterminer: return "determiner";
    case Pos::kSubordinator: return "subordinator";
    case Pos::kConjunction: return "conjunction";
    case Pos::kPreposition: return "preposition";
    case Pos::kNegation: return "negation";
    case Pos::kPronoun: return "pronoun";
    case Pos::kNumber: return "number";
    case Pos::kTimeUnit: return "time-unit";
    case Pos::kMarker: return "marker";
    case Pos::kComma: return "comma";
    case Pos::kPeriod: return "period";
    case Pos::kUnknown: return "unknown";
  }
  return "?";
}

void Lexicon::add(const std::string& word, Pos pos) {
  words_[util::to_lower(word)].insert(pos);
}

void Lexicon::add_verb(const std::string& lemma) {
  const std::string lower = util::to_lower(lemma);
  verb_lemmas_.insert(lower);
  words_[lower].insert(Pos::kVerb);
}

void Lexicon::add_irregular_verb(const std::string& form, const std::string& lemma,
                                 VerbForm verb_form) {
  const std::string lower = util::to_lower(form);
  irregular_[lower] = {util::to_lower(lemma), verb_form};
  words_[lower].insert(Pos::kVerb);
}

bool Lexicon::known(const std::string& word) const {
  return words_.count(util::to_lower(word)) > 0;
}

namespace {

bool is_number(const std::string& word) {
  if (word.empty()) return false;
  for (char c : word) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

/// Candidate stems for an -ed / -ing inflection, most specific first.
std::vector<std::string> strip_suffix_candidates(const std::string& word,
                                                 const std::string& suffix) {
  std::vector<std::string> out;
  if (word.size() <= suffix.size() ||
      word.substr(word.size() - suffix.size()) != suffix) {
    return out;
  }
  const std::string stem = word.substr(0, word.size() - suffix.size());
  // terminated -> terminate (re-add 'e').
  out.push_back(stem + "e");
  // pressed -> press.
  out.push_back(stem);
  // plugged -> plug (undouble final consonant).
  if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
    out.push_back(stem.substr(0, stem.size() - 1));
  }
  // carried -> carry (only for -ed/-es after 'i').
  if (!stem.empty() && stem.back() == 'i') {
    out.push_back(stem.substr(0, stem.size() - 1) + "y");
  }
  return out;
}

}  // namespace

std::optional<VerbAnalysis> Lexicon::analyze_verb(const std::string& raw) const {
  const std::string word = util::to_lower(raw);
  const auto irr = irregular_.find(word);
  if (irr != irregular_.end()) return irr->second;
  if (verb_lemmas_.count(word) > 0) return VerbAnalysis{word, VerbForm::kBase};

  struct Rule {
    const char* suffix;
    VerbForm form;
  };
  static const Rule kRules[] = {
      {"ing", VerbForm::kGerund},
      {"ed", VerbForm::kPastParticiple},
      {"es", VerbForm::kThirdPerson},
      {"s", VerbForm::kThirdPerson},
  };
  for (const Rule& rule : kRules) {
    for (const std::string& stem : strip_suffix_candidates(word, rule.suffix)) {
      if (verb_lemmas_.count(stem) > 0) return VerbAnalysis{stem, rule.form};
    }
  }
  return std::nullopt;
}

std::optional<unsigned> Lexicon::time_unit_seconds(const std::string& raw) const {
  const std::string word = util::to_lower(raw);
  if (word == "second" || word == "seconds") return 1;
  if (word == "minute" || word == "minutes") return 60;
  if (word == "hour" || word == "hours") return 3600;
  if (word == "tick" || word == "ticks") return 1;
  return std::nullopt;
}

std::set<Pos> Lexicon::lookup(const std::string& raw) const {
  const std::string word = util::to_lower(raw);
  std::set<Pos> out;

  const auto it = words_.find(word);
  if (it != words_.end()) out = it->second;
  if (analyze_verb(word).has_value()) out.insert(Pos::kVerb);
  if (is_number(word)) out.insert(Pos::kNumber);
  if (time_unit_seconds(word).has_value()) out.insert(Pos::kTimeUnit);
  if (!out.empty()) return out;

  // Suffix heuristics for open-class words outside the vocabulary.
  if (util::ends_with(word, "able") || util::ends_with(word, "ible") ||
      util::ends_with(word, "ive") || util::ends_with(word, "ous") ||
      util::ends_with(word, "al") || util::ends_with(word, "ful")) {
    out.insert(Pos::kAdjective);
  } else if (util::ends_with(word, "ly")) {
    out.insert(Pos::kAdverb);
  } else {
    out.insert(Pos::kNoun);
  }
  return out;
}

util::Digest Lexicon::fingerprint() const {
  // Sort the unordered containers so the digest is a pure function of the
  // vocabulary's content, not of hashing or insertion order.
  util::DigestBuilder builder("lexicon");

  std::vector<const std::string*> words;
  words.reserve(words_.size());
  for (const auto& [word, _] : words_) words.push_back(&word);
  std::sort(words.begin(), words.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  builder.u64(words.size());
  for (const std::string* word : words) {
    builder.str(*word);
    const std::set<Pos>& poss = words_.at(*word);
    builder.u64(poss.size());
    for (Pos pos : poss) builder.u64(static_cast<std::uint64_t>(pos));
  }

  builder.u64(verb_lemmas_.size());
  for (const std::string& lemma : verb_lemmas_) builder.str(lemma);

  std::vector<const std::string*> forms;
  forms.reserve(irregular_.size());
  for (const auto& [form, _] : irregular_) forms.push_back(&form);
  std::sort(forms.begin(), forms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  builder.u64(forms.size());
  for (const std::string* form : forms) {
    const VerbAnalysis& analysis = irregular_.at(*form);
    builder.str(*form);
    builder.str(analysis.lemma);
    builder.u64(static_cast<std::uint64_t>(analysis.form));
  }
  return builder.finalize();
}

Lexicon Lexicon::builtin() {
  Lexicon lex;

  // ---- Closed classes -------------------------------------------------------
  for (const char* w : {"the", "a", "an", "this", "that", "every", "each",
                        "some", "any"}) {
    lex.add(w, Pos::kDeterminer);
  }
  for (const char* w : {"shall", "should", "will", "would", "can", "could",
                        "must", "may"}) {
    lex.add(w, Pos::kModal);
  }
  for (const char* w : {"if", "after", "once", "when", "whenever", "while",
                        "before", "until", "next"}) {
    lex.add(w, Pos::kSubordinator);
  }
  for (const char* w : {"and", "or"}) lex.add(w, Pos::kConjunction);
  for (const char* w : {"in", "at", "to", "of", "for", "from", "with", "by",
                        "into", "on"}) {
    lex.add(w, Pos::kPreposition);
  }
  for (const char* w : {"not", "no", "never"}) lex.add(w, Pos::kNegation);
  lex.add("it", Pos::kPronoun);
  for (const char* w : {"then", "also", "so"}) lex.add(w, Pos::kMarker);
  for (const char* w : {"globally", "always", "sometimes", "eventually",
                        "immediately"}) {
    lex.add(w, Pos::kAdverb);
  }

  // Forms of "be".
  for (const char* w : {"be", "is", "are", "was", "were", "been", "being"}) {
    lex.add(w, Pos::kBe);
  }

  // ---- Verbs (base lemmas; inflections via morphology) -----------------------
  for (const char* v :
       {"enter",   "inflate",  "press",    "terminate", "start",    "run",
        "trigger", "select",   "detect",   "corroborate", "issue",  "provide",
        "disable", "enable",   "sound",    "plug",      "monitor",  "control",
        "drive",   "power",    "turn",     "lose",      "clear",    "remain",
        "become",  "stay",     "arrive",   "operate",   "read",     "give",
        "take",    "look",     "move",     "visit",     "carry",    "deliver",
        "rescue",  "find",     "search",   "reach",     "process",  "reserve",
        "order",   "ship",     "cancel",   "submit",    "display",  "post",
        "send",    "receive",  "browse",   "confirm",   "notify",   "update",
        "store",   "validate", "reject",   "approve",   "handle",   "request",
        "grant",   "release",  "activate", "deactivate", "suspend", "resume",
        "log",     "publish",  "retrieve", "refresh",   "verify",   "charge",
        "pay",     "deduct",   "restock",  "dispatch",  "queue",    "poll",
        "sample",  "measure",  "report",   "raise",     "silence",  "acknowledge"}) {
    lex.add_verb(v);
  }
  // Irregular inflections used by the corpora.
  lex.add_irregular_verb("is", "be", VerbForm::kThirdPerson);
  lex.add_irregular_verb("are", "be", VerbForm::kThirdPerson);
  lex.add_irregular_verb("was", "be", VerbForm::kPast);
  lex.add_irregular_verb("were", "be", VerbForm::kPast);
  lex.add_irregular_verb("been", "be", VerbForm::kPastParticiple);
  lex.add_irregular_verb("lost", "lose", VerbForm::kPastParticiple);
  lex.add_irregular_verb("ran", "run", VerbForm::kPast);
  lex.add_irregular_verb("running", "run", VerbForm::kGerund);
  lex.add_irregular_verb("found", "find", VerbForm::kPastParticiple);
  lex.add_irregular_verb("sent", "send", VerbForm::kPastParticiple);
  lex.add_irregular_verb("read", "read", VerbForm::kPastParticiple);
  lex.add_irregular_verb("paid", "pay", VerbForm::kPastParticiple);

  // ---- Adjectives (antonym candidates live here and in the dictionary) -------
  for (const char* adj :
       {"available", "unavailable", "valid",   "invalid",  "ok",
        "low",        "high",        "ready",   "operational", "lost",
        "enabled",    "disabled",    "open",    "closed",   "on",
        "off",        "empty",       "full",    "active",   "inactive",
        "busy",       "idle",        "visible", "hidden",   "present",
        "absent",     "injured",     "normal",  "faulty",   "connected",
        "disconnected", "locked",    "unlocked", "online",  "offline",
        "pending",    "complete",    "incomplete", "correct", "incorrect",
        "successful", "failed",      "clear",   "occluded"}) {
    lex.add(adj, Pos::kAdjective);
  }

  // ---- Nouns (corpus vocabulary) ---------------------------------------------
  for (const char* n :
       {"cara",     "lstat",     "pump",      "mode",     "auto",
        "manual",   "wait",      "control",   "button",   "alarm",
        "cuff",     "arterial",  "line",      "pulse",    "wave",
        "pressure", "blood",     "signal",    "air",      "occlusion",
        "infusate", "override",  "selection", "confirmation", "yes",
        "no",       "corroboration", "source", "battery", "power",
        "supply",   "impedance", "reading",   "monitor",  "detector",
        "system",   "software",  "patient",   "rate",     "infusion",
        "robot",    "room",      "medic",     "person",   "people",
        "shopping", "cart",      "item",      "order",    "article",
        "reservation", "information", "bulletin", "board", "application",
        "user",     "account",   "payment",   "card",     "stock",
        "catalog",  "request",   "response",  "message",  "notice",
        "session",  "page",      "query",     "database", "record",
        "customer", "editor",    "review",    "draft",    "seat",
        "schedule", "ticket",    "posting",   "moderator", "queue",
        "timeout",  "retry",     "error",     "status",   "light",
        "door",     "sensor",    "valve",     "heater",   "fan"}) {
    lex.add(n, Pos::kNoun);
  }

  return lex;
}

}  // namespace speccc::nlp
