// Stanford-style typed dependencies extracted from parsed sentences.
//
// The paper's semantic reasoning (Algorithm 1) consumes the dependency
// relation <subject, dependent> produced by the Stanford parser; this module
// reproduces that interface from our grammar parse. Relations emitted:
//
//   nsubj / nsubjpass  verb lemma      <- subject head
//   acomp              be              <- adjective complement
//   amod               subject head    <- attributive adjective
//   advmod             clause          <- modifier adverb
//   neg                predicate       <- "not"
//   conj_and / conj_or subject 1       <- subject 2
//
// For Algorithm 1 only the adjective/adverb dependents of each subject
// matter; subject_dependents() groups exactly those (the paper's `subject`
// map), excluding capitalized proper-name components.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "nlp/syntax.hpp"

namespace speccc::nlp {

struct Dependency {
  std::string type;       // "nsubj", "acomp", "amod", ...
  std::string governor;
  std::string dependent;

  friend bool operator==(const Dependency&, const Dependency&) = default;
};

/// All typed dependencies of a sentence.
[[nodiscard]] std::vector<Dependency> dependencies(const Sentence& sentence);

/// The paper's `subject` grouping: for every subject (name joined with '_'),
/// the set of adjective/adverb words depending on it anywhere in the
/// sentence -- the antonym candidates of Algorithm 1.
[[nodiscard]] std::map<std::string, std::set<std::string>> subject_dependents(
    const Sentence& sentence);

}  // namespace speccc::nlp
