#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/diagnostics.hpp"

namespace speccc::sat {

int Solver::new_var() {
  const int v = num_vars();
  assign_.push_back(Value::kUndef);
  vars_.push_back({});
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

void Solver::heap_up(std::size_t i) {
  const int v = heap_[i];
  const double a = vars_[v].activity;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (vars_[heap_[parent]].activity >= a) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<int>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<int>(i);
}

void Solver::heap_down(std::size_t i) {
  const int v = heap_[i];
  const double a = vars_[v].activity;
  const std::size_t size = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        vars_[heap_[child + 1]].activity > vars_[heap_[child]].activity) {
      ++child;
    }
    if (vars_[heap_[child]].activity <= a) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<int>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<int>(i);
}

void Solver::heap_insert(int var) {
  if (heap_pos_[var] >= 0) return;
  heap_.push_back(var);
  heap_up(heap_.size() - 1);
}

Solver::Value Solver::lit_value(Lit l) const {
  const Value v = assign_[static_cast<std::size_t>(l.var())];
  if (v == Value::kUndef) return Value::kUndef;
  const bool b = (v == Value::kTrue) == l.positive();
  return b ? Value::kTrue : Value::kFalse;
}

std::uint32_t Solver::alloc_clause(const Clause& clause, bool learned,
                                   std::uint32_t lbd) {
  const auto ref = static_cast<std::uint32_t>(arena_.size());
  // Reason tagging steals the top bit, so arena offsets must stay below
  // kBinaryTag (2^31 words = 8 GiB of clauses -- far past any workload).
  speccc_check(arena_.size() + 2 + clause.size() < kBinaryTag,
               "clause arena overflow");
  arena_.push_back(static_cast<std::uint32_t>(clause.size()));
  arena_.push_back((lbd << 1) | (learned ? 1u : 0u));
  for (const Lit l : clause) {
    arena_.push_back(static_cast<std::uint32_t>(l.code()));
  }
  ++num_clauses_;
  return ref;
}

void Solver::add_clause(Clause clause) {
  if (unsat_) return;
  // Adding clauses is only sound at decision level 0: a unit enqueued at a
  // stale level from a previous solve() would be silently undone by the next
  // backtrack. This invalidates the current model.
  backtrack(0);
  // Remove duplicate literals; detect tautologies.
  std::sort(clause.begin(), clause.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  Clause cleaned;
  for (Lit l : clause) {
    speccc_check(l.var() < num_vars(), "literal references unknown variable");
    if (!cleaned.empty() && cleaned.back() == l) continue;
    if (!cleaned.empty() && cleaned.back() == l.negated()) return;  // tautology
    cleaned.push_back(l);
  }
  // Drop literals already false at level 0; satisfied clauses are no-ops.
  Clause active;
  for (Lit l : cleaned) {
    if (lit_value(l) == Value::kTrue && vars_[l.var()].level == 0 &&
        assign_[l.var()] != Value::kUndef) {
      return;
    }
    if (lit_value(l) == Value::kFalse && assign_[l.var()] != Value::kUndef &&
        vars_[l.var()].level == 0) {
      continue;
    }
    active.push_back(l);
  }
  if (active.empty()) {
    unsat_ = true;
    return;
  }
  if (active.size() == 1) {
    if (lit_value(active[0]) == Value::kFalse) {
      unsat_ = true;
      return;
    }
    if (lit_value(active[0]) == Value::kUndef) {
      enqueue(active[0], kRefNone);
      if (propagate() != kRefNone) unsat_ = true;
    }
    return;
  }
  if (active.size() == 2) {
    attach_binary(active[0], active[1]);
    ++num_clauses_;
    return;
  }
  attach(alloc_clause(active, false, 0));
}

void Solver::attach(std::uint32_t ref) {
  const Lit l0 = Lit::from_code(static_cast<int>(arena_[ref + 2]));
  const Lit l1 = Lit::from_code(static_cast<int>(arena_[ref + 3]));
  watches_[l0.negated().code()].push_back({ref, l1});
  watches_[l1.negated().code()].push_back({ref, l0});
}

void Solver::attach_binary(Lit a, Lit b) {
  watches_[a.negated().code()].push_back(
      {kBinaryTag | static_cast<std::uint32_t>(b.code()), b});
  watches_[b.negated().code()].push_back(
      {kBinaryTag | static_cast<std::uint32_t>(a.code()), a});
}

void Solver::enqueue(Lit l, std::uint32_t reason) {
  speccc_check(lit_value(l) == Value::kUndef, "enqueue on assigned literal");
  assign_[l.var()] = l.positive() ? Value::kTrue : Value::kFalse;
  vars_[l.var()].reason = reason;
  vars_[l.var()].level = static_cast<int>(trail_limits_.size());
  trail_.push_back(l);
}

std::uint32_t Solver::propagate() {
  while (queue_head_ < trail_.size()) {
    const Lit p = trail_[queue_head_++];
    ++stats_.propagations;
    auto& watchers = watches_[p.code()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watchers.size(); ++i) {
      const Watcher w = watchers[i];
      if (!is_arena_ref(w.ref)) {
        // Binary clause {p.negated(), w.blocker}: nothing to migrate, the
        // watcher stays put forever.
        watchers[keep++] = w;
        const Value v = lit_value(w.blocker);
        if (v == Value::kTrue) continue;
        if (v == Value::kFalse) {
          binary_conflict_[0] = w.blocker;
          binary_conflict_[1] = p.negated();
          for (++i; i < watchers.size(); ++i) watchers[keep++] = watchers[i];
          watchers.resize(keep);
          return kConflictBinary;
        }
        enqueue(w.blocker,
                kBinaryTag | static_cast<std::uint32_t>(p.negated().code()));
        continue;
      }
      if (lit_value(w.blocker) == Value::kTrue) {
        watchers[keep++] = w;
        continue;
      }
      std::uint32_t* lits = &arena_[w.ref + 2];
      const std::uint32_t size = arena_[w.ref];
      // Normalize: make lits[0] the other watched literal.
      const auto false_code = static_cast<std::uint32_t>(p.negated().code());
      if (lits[0] == false_code) std::swap(lits[0], lits[1]);
      const Lit first = Lit::from_code(static_cast<int>(lits[0]));
      if (lit_value(first) == Value::kTrue) {
        watchers[keep++] = {w.ref, first};
        continue;
      }
      // Find a new literal to watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (lit_value(Lit::from_code(static_cast<int>(lits[k]))) !=
            Value::kFalse) {
          std::swap(lits[1], lits[k]);
          const Lit new_watch = Lit::from_code(static_cast<int>(lits[1]));
          watches_[new_watch.negated().code()].push_back({w.ref, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      if (lit_value(first) == Value::kFalse) {
        // Conflict: restore remaining watchers and report.
        for (; i < watchers.size(); ++i) watchers[keep++] = watchers[i];
        watchers.resize(keep);
        return w.ref;
      }
      watchers[keep++] = w;
      enqueue(first, w.ref);
    }
    watchers.resize(keep);
  }
  return kRefNone;
}

void Solver::bump(int var) {
  vars_[var].activity += activity_increment_;
  if (heap_pos_[var] >= 0) heap_up(static_cast<std::size_t>(heap_pos_[var]));
  if (vars_[var].activity > 1e100) {
    // Uniform rescale: relative order is unchanged, the heap stays valid.
    for (auto& v : vars_) v.activity *= 1e-100;
    activity_increment_ *= 1e-100;
  }
}

void Solver::decay() { activity_increment_ /= 0.95; }

void Solver::analyze(std::uint32_t conflict, Clause& learned,
                     int& backtrack_level) {
  learned.clear();
  learned.push_back(Lit());  // placeholder for the asserting literal
  int counter = 0;
  Lit p;
  bool p_valid = false;
  std::size_t trail_index = trail_.size();
  const int current_level = static_cast<int>(trail_limits_.size());

  const auto visit = [&](Lit q) {
    if (seen_[q.var()] || vars_[q.var()].level == 0) return;
    seen_[q.var()] = true;
    bump(q.var());
    if (vars_[q.var()].level >= current_level) {
      ++counter;
    } else {
      learned.push_back(q);
    }
  };

  std::uint32_t reason = conflict;
  for (;;) {
    speccc_check(reason != kRefNone, "analyze requires a reason clause");
    if (reason == kConflictBinary) {
      visit(binary_conflict_[0]);
      visit(binary_conflict_[1]);
    } else if (!is_arena_ref(reason)) {
      // Binary reason for p: the clause is {p, other}; only the other
      // literal resolves in.
      visit(Lit::from_code(static_cast<int>(reason & ~kBinaryTag)));
    } else {
      std::uint32_t* lits = &arena_[reason + 2];
      const std::uint32_t size = arena_[reason];
      if (p_valid) {
        // For resolution steps the reason's first literal is p itself.
        if (Lit::from_code(static_cast<int>(lits[0])) != p) {
          for (std::uint32_t k = 1; k < size; ++k) {
            if (Lit::from_code(static_cast<int>(lits[k])) == p) {
              std::swap(lits[0], lits[k]);
              break;
            }
          }
        }
      }
      for (std::uint32_t k = p_valid ? 1 : 0; k < size; ++k) {
        visit(Lit::from_code(static_cast<int>(lits[k])));
      }
    }
    // Select the next literal on the trail to resolve.
    do {
      --trail_index;
      p = trail_[trail_index];
    } while (!seen_[p.var()]);
    seen_[p.var()] = false;
    --counter;
    if (counter == 0) break;
    reason = vars_[p.var()].reason;
    p_valid = true;
  }
  learned[0] = p.negated();

  // Conflict-clause minimization: drop literals implied by the rest of the
  // clause through their reason chains (MiniSat's recursive strengthening).
  // seen_ currently marks exactly learned[1..]; lit_redundant memoizes
  // established-redundant vars as additional seen_ marks.
  analyze_toclear_.assign(learned.begin() + 1, learned.end());
  std::size_t write = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    if (vars_[learned[i].var()].reason == kRefNone ||
        !lit_redundant(learned[i])) {
      learned[write++] = learned[i];
    }
  }
  learned.resize(write);
  for (const Lit l : analyze_toclear_) seen_[l.var()] = false;

  // Compute backtrack level = max level among learned[1..].
  backtrack_level = 0;
  std::size_t max_index = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    const int lvl = vars_[learned[i].var()].level;
    if (lvl > backtrack_level) {
      backtrack_level = lvl;
      max_index = i;
    }
  }
  if (learned.size() > 1) std::swap(learned[1], learned[max_index]);
}

bool Solver::lit_redundant(Lit p0) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p0);
  const std::size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit p = analyze_stack_.back();
    analyze_stack_.pop_back();
    const std::uint32_t reason = vars_[p.var()].reason;
    speccc_check(reason != kRefNone, "redundancy walk reached a decision");
    const auto antecedent = [&](Lit q) {
      if (q.var() == p.var() || seen_[q.var()] || vars_[q.var()].level == 0) {
        return true;
      }
      if (vars_[q.var()].reason == kRefNone) return false;
      seen_[q.var()] = true;
      analyze_toclear_.push_back(q);
      analyze_stack_.push_back(q);
      return true;
    };
    bool ok = true;
    if (!is_arena_ref(reason)) {
      ok = antecedent(Lit::from_code(static_cast<int>(reason & ~kBinaryTag)));
    } else {
      const std::uint32_t size = arena_[reason];
      for (std::uint32_t k = 0; ok && k < size; ++k) {
        ok = antecedent(Lit::from_code(static_cast<int>(arena_[reason + 2 + k])));
      }
    }
    if (!ok) {
      // Not redundant: undo the marks this walk added (they are only
      // known reachable-from-p0, not implied by the clause).
      for (std::size_t j = top; j < analyze_toclear_.size(); ++j) {
        seen_[analyze_toclear_[j].var()] = false;
      }
      analyze_toclear_.resize(top);
      return false;
    }
  }
  return true;
}

void Solver::backtrack(int level) {
  if (static_cast<int>(trail_limits_.size()) <= level) return;
  const int limit = trail_limits_[level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= limit; --i) {
    const int v = trail_[i].var();
    vars_[v].saved_phase = assign_[v] == Value::kTrue;
    assign_[v] = Value::kUndef;
    vars_[v].reason = kRefNone;
    heap_insert(v);
  }
  trail_.resize(limit);
  trail_limits_.resize(level);
  queue_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  // Pop until an unassigned var surfaces; assigned entries are stale (they
  // re-enter the heap when backtracking unassigns them).
  while (!heap_.empty()) {
    const int v = heap_[0];
    heap_pos_[v] = -1;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_pos_[heap_[0]] = 0;
      heap_down(0);
    }
    if (assign_[v] == Value::kUndef) return Lit(v, vars_[v].saved_phase);
  }
  speccc_check(false, "pick_branch with full assignment");
  return Lit(0, false);
}

std::uint32_t Solver::clause_lbd(const Clause& clause) const {
  // Glucose's literal-block distance: the number of distinct decision
  // levels among the clause's literals, evaluated at learn time (callers
  // compute it before backtracking, while every literal is still
  // assigned). Learned clauses are short, so sort+unique beats a stamp
  // array here.
  std::vector<int> levels;
  levels.reserve(clause.size());
  for (const Lit l : clause) levels.push_back(vars_[l.var()].level);
  std::sort(levels.begin(), levels.end());
  return static_cast<std::uint32_t>(
      std::unique(levels.begin(), levels.end()) - levels.begin());
}

void Solver::reduce_learned() {
  speccc_check(trail_limits_.empty(), "reduce_learned above decision level 0");
  // Never delete: original clauses, reasons of (level-0) assignments, and
  // glue clauses (LBD <= 2 -- they connect at most two decision blocks and
  // are the ones worth keeping forever). Binary clauses are all glue and
  // never enter the arena, so they need no handling here beyond keeping
  // their watchers intact below.
  std::vector<std::uint32_t> locked;
  for (const Lit l : trail_) {
    const std::uint32_t reason = vars_[l.var()].reason;
    if (reason != kRefNone && is_arena_ref(reason)) locked.push_back(reason);
  }
  std::sort(locked.begin(), locked.end());
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t ref = 0; ref < arena_.size();
       ref += 2 + arena_[ref]) {
    const std::uint32_t info = arena_[ref + 1];
    if ((info & 1u) != 0 && (info >> 1) > 2 &&
        !std::binary_search(locked.begin(), locked.end(), ref)) {
      candidates.push_back(ref);
    }
  }
  // Delete the worse half: higher LBD first; within a tier, older first
  // (stable sort keeps ref order, and a smaller ref = learned earlier).
  std::stable_sort(candidates.begin(), candidates.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return (arena_[a + 1] >> 1) > (arena_[b + 1] >> 1);
                   });
  const std::size_t to_delete = candidates.size() / 2;
  if (to_delete == 0) return;
  std::vector<std::uint32_t> drop(candidates.begin(),
                                  candidates.begin() + to_delete);
  std::sort(drop.begin(), drop.end());

  // Compact the arena in place, recording old-ref -> new-ref pairs
  // (ascending in old ref, so remapping is a binary search), then fix
  // every index that referenced it: watcher refs and trail reasons.
  // Binary watchers and binary reasons carry no arena ref and pass
  // through untouched.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> remap;
  std::uint32_t write = 0;
  for (std::uint32_t ref = 0; ref < arena_.size();) {
    const std::uint32_t len = 2 + arena_[ref];
    if (std::binary_search(drop.begin(), drop.end(), ref)) {
      ref += len;
      continue;
    }
    remap.emplace_back(ref, write);
    if (write != ref) {
      for (std::uint32_t j = 0; j < len; ++j) arena_[write + j] = arena_[ref + j];
    }
    write += len;
    ref += len;
  }
  arena_.resize(write);
  const auto remapped = [&](std::uint32_t ref) -> std::uint32_t {
    const auto it = std::lower_bound(
        remap.begin(), remap.end(), ref,
        [](const auto& entry, std::uint32_t key) { return entry.first < key; });
    if (it == remap.end() || it->first != ref) return kRefNone;
    return it->second;
  };
  for (auto& watchers : watches_) {
    std::size_t keep = 0;
    for (const Watcher& w : watchers) {
      if (!is_arena_ref(w.ref)) {
        watchers[keep++] = w;
        continue;
      }
      const std::uint32_t new_ref = remapped(w.ref);
      if (new_ref != kRefNone) watchers[keep++] = {new_ref, w.blocker};
    }
    watchers.resize(keep);
  }
  for (auto& v : vars_) {
    if (v.reason != kRefNone && is_arena_ref(v.reason)) {
      const std::uint32_t new_ref = remapped(v.reason);
      speccc_check(new_ref != kRefNone, "trail reason deleted by reduction");
      v.reason = new_ref;
    }
  }
  num_learned_ -= to_delete;
  num_clauses_ -= to_delete;
  stats_.deleted += to_delete;
  ++stats_.reductions;
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Knuth's formulation of the Luby sequence.
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) <= i + 1) ++k;
  while ((1ULL << k) - 1 != i + 1) {
    i = i - ((1ULL << k) - 1) + 1 - 1;
    k = 1;
    while ((1ULL << (k + 1)) <= i + 1) ++k;
  }
  return 1ULL << (k - 1);
}

void Solver::analyze_final(Lit failed, const std::vector<Lit>& assumptions) {
  core_.clear();
  failed_assumptions_.assign(static_cast<std::size_t>(num_vars()), false);
  // The falsified assumption itself is always part of the core (when it is
  // false at level 0 the clauses alone entail its negation, and {failed} is
  // the whole core).
  failed_assumptions_[failed.var()] = true;

  // Resolution walk (MiniSat's analyzeFinal): seed with the falsified
  // assumption's variable, then walk the trail top-down replacing every
  // implied literal by its reason clause until only decisions remain. At
  // this point every decision on the trail is an assumption decision:
  // normal decisions are only made once all assumptions hold, and then no
  // assumption can be found false.
  if (!trail_limits_.empty()) {
    seen_[failed.var()] = true;
    for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_limits_[0];
         --i) {
      const Lit p = trail_[static_cast<std::size_t>(i)];
      if (!seen_[p.var()]) continue;
      seen_[p.var()] = false;
      const std::uint32_t reason = vars_[p.var()].reason;
      if (reason == kRefNone) {
        failed_assumptions_[p.var()] = true;
        continue;
      }
      if (!is_arena_ref(reason)) {
        const Lit q = Lit::from_code(static_cast<int>(reason & ~kBinaryTag));
        if (vars_[q.var()].level > 0) seen_[q.var()] = true;
        continue;
      }
      const std::uint32_t size = arena_[reason];
      for (std::uint32_t k = 0; k < size; ++k) {
        const Lit q = Lit::from_code(static_cast<int>(arena_[reason + 2 + k]));
        if (q.var() != p.var() && vars_[q.var()].level > 0) {
          seen_[q.var()] = true;
        }
      }
    }
    // The seed may sit at level 0 (below the walk's range); leave seen_
    // clean for the next analyze().
    seen_[failed.var()] = false;
  }

  // Order the core like the assumptions vector: callers treat it as a
  // pruned copy of their query.
  for (const Lit a : assumptions) {
    if (failed_assumptions_[a.var()] &&
        std::find(core_.begin(), core_.end(), a) == core_.end()) {
      core_.push_back(a);
    }
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  core_.clear();
  failed_assumptions_.assign(static_cast<std::size_t>(num_vars()), false);
  if (unsat_) return Result::kUnsat;
  backtrack(0);
  if (propagate() != kRefNone) {
    unsat_ = true;
    return Result::kUnsat;
  }
  // Long-lived incremental use: every solve() call is a level-0 point, so
  // enforce the learned-clause cap here -- a worker issuing thousands of
  // small queries plateaus instead of growing without bound.
  if (learned_cap_ != 0 && num_learned_ >= learned_cap_) reduce_learned();

  std::uint64_t restart_round = 0;
  std::uint64_t conflicts_until_restart = 64 * luby(restart_round);
  std::uint64_t conflicts_this_round = 0;

  for (;;) {
    const std::uint32_t conflict = propagate();
    if (conflict != kRefNone) {
      ++stats_.conflicts;
      ++conflicts_this_round;
      if (trail_limits_.empty()) {
        unsat_ = true;
        return Result::kUnsat;
      }
      Clause learned;
      int backtrack_level = 0;
      analyze(conflict, learned, backtrack_level);
      // LBD must be measured before backtrack() unassigns the literals.
      const std::uint32_t lbd = clause_lbd(learned);
      // Never backtrack past the assumption prefix: if the learned clause
      // asserts below the number of assumptions taken, the assumptions
      // conflict.
      backtrack(backtrack_level);
      if (learned.size() == 1) {
        if (lit_value(learned[0]) == Value::kFalse) {
          unsat_ = true;
          return Result::kUnsat;
        }
        if (lit_value(learned[0]) == Value::kUndef) {
          enqueue(learned[0], kRefNone);
        }
      } else if (learned.size() == 2) {
        attach_binary(learned[0], learned[1]);
        ++num_clauses_;
        ++stats_.learned;
        ++num_learned_;
        enqueue(learned[0],
                kBinaryTag | static_cast<std::uint32_t>(learned[1].code()));
      } else {
        const std::uint32_t ref = alloc_clause(learned, true, lbd);
        ++stats_.learned;
        ++num_learned_;
        attach(ref);
        enqueue(learned[0], ref);
      }
      decay();
      if (conflicts_this_round >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_round;
        conflicts_this_round = 0;
        conflicts_until_restart = 64 * luby(restart_round);
        backtrack(0);
        if (learned_cap_ != 0 && num_learned_ >= learned_cap_) {
          reduce_learned();
        }
      }
      continue;
    }

    // Re-apply assumptions that are not yet on the trail.
    bool assumption_conflict = false;
    bool made_decision = false;
    for (std::size_t i = 0; i < assumptions.size(); ++i) {
      const Lit l = assumptions[i];
      speccc_check(l.var() < num_vars(), "assumption on unknown variable");
      if (lit_value(l) == Value::kTrue) continue;
      if (lit_value(l) == Value::kFalse) {
        analyze_final(l, assumptions);
        assumption_conflict = true;
        break;
      }
      trail_limits_.push_back(static_cast<int>(trail_.size()));
      ++stats_.decisions;
      enqueue(l, kRefNone);
      made_decision = true;
      break;
    }
    if (assumption_conflict) {
      backtrack(0);
      return Result::kUnsat;
    }
    if (made_decision) continue;

    // All assumptions hold; decide on the remaining variables.
    if (trail_.size() == static_cast<std::size_t>(num_vars())) {
      return Result::kSat;
    }
    trail_limits_.push_back(static_cast<int>(trail_.size()));
    ++stats_.decisions;
    enqueue(pick_branch(), kRefNone);
  }
}

bool Solver::value(int var) const {
  speccc_check(var >= 0 && var < num_vars(), "value() variable out of range");
  speccc_check(assign_[var] != Value::kUndef, "value() on unassigned variable");
  return assign_[var] == Value::kTrue;
}

bool Solver::assumption_failed(Lit assumption) const {
  const int v = assumption.var();
  return v < static_cast<int>(failed_assumptions_.size()) &&
         failed_assumptions_[v];
}

}  // namespace speccc::sat
