#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/diagnostics.hpp"

namespace speccc::sat {

int Solver::new_var() {
  const int v = num_vars();
  assign_.push_back(Value::kUndef);
  vars_.push_back({});
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

Solver::Value Solver::lit_value(Lit l) const {
  const Value v = assign_[static_cast<std::size_t>(l.var())];
  if (v == Value::kUndef) return Value::kUndef;
  const bool b = (v == Value::kTrue) == l.positive();
  return b ? Value::kTrue : Value::kFalse;
}

void Solver::add_clause(Clause clause) {
  if (unsat_) return;
  // Adding clauses is only sound at decision level 0: a unit enqueued at a
  // stale level from a previous solve() would be silently undone by the next
  // backtrack. This invalidates the current model.
  backtrack(0);
  // Remove duplicate literals; detect tautologies.
  std::sort(clause.begin(), clause.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  Clause cleaned;
  for (Lit l : clause) {
    speccc_check(l.var() < num_vars(), "literal references unknown variable");
    if (!cleaned.empty() && cleaned.back() == l) continue;
    if (!cleaned.empty() && cleaned.back() == l.negated()) return;  // tautology
    cleaned.push_back(l);
  }
  // Drop literals already false at level 0; satisfied clauses are no-ops.
  Clause active;
  for (Lit l : cleaned) {
    if (lit_value(l) == Value::kTrue && vars_[l.var()].level == 0 &&
        assign_[l.var()] != Value::kUndef) {
      return;
    }
    if (lit_value(l) == Value::kFalse && assign_[l.var()] != Value::kUndef &&
        vars_[l.var()].level == 0) {
      continue;
    }
    active.push_back(l);
  }
  if (active.empty()) {
    unsat_ = true;
    return;
  }
  if (active.size() == 1) {
    if (lit_value(active[0]) == Value::kFalse) {
      unsat_ = true;
      return;
    }
    if (lit_value(active[0]) == Value::kUndef) {
      enqueue(active[0], -1);
      if (propagate() != -1) unsat_ = true;
    }
    return;
  }
  clauses_.push_back({std::move(active), false});
  attach(static_cast<int>(clauses_.size()) - 1);
}

void Solver::attach(int clause_index) {
  const Clause& c = clauses_[clause_index].lits;
  watches_[c[0].negated().code()].push_back({clause_index, c[1]});
  watches_[c[1].negated().code()].push_back({clause_index, c[0]});
}

void Solver::enqueue(Lit l, int reason) {
  speccc_check(lit_value(l) == Value::kUndef, "enqueue on assigned literal");
  assign_[l.var()] = l.positive() ? Value::kTrue : Value::kFalse;
  vars_[l.var()].reason = reason;
  vars_[l.var()].level = static_cast<int>(trail_limits_.size());
  trail_.push_back(l);
}

int Solver::propagate() {
  while (queue_head_ < trail_.size()) {
    const Lit p = trail_[queue_head_++];
    ++stats_.propagations;
    auto& watchers = watches_[p.code()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watchers.size(); ++i) {
      const Watcher w = watchers[i];
      if (lit_value(w.blocker) == Value::kTrue) {
        watchers[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause_index].lits;
      // Normalize: make c[0] the other watched literal.
      const Lit false_lit = p.negated();
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      if (lit_value(c[0]) == Value::kTrue) {
        watchers[keep++] = {w.clause_index, c[0]};
        continue;
      }
      // Find a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (lit_value(c[k]) != Value::kFalse) {
          std::swap(c[1], c[k]);
          watches_[c[1].negated().code()].push_back({w.clause_index, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      if (lit_value(c[0]) == Value::kFalse) {
        // Conflict: restore remaining watchers and report.
        for (; i < watchers.size(); ++i) watchers[keep++] = watchers[i];
        watchers.resize(keep);
        return w.clause_index;
      }
      watchers[keep++] = w;
      enqueue(c[0], w.clause_index);
    }
    watchers.resize(keep);
  }
  return -1;
}

void Solver::bump(int var) {
  vars_[var].activity += activity_increment_;
  if (vars_[var].activity > 1e100) {
    for (auto& v : vars_) v.activity *= 1e-100;
    activity_increment_ *= 1e-100;
  }
}

void Solver::decay() { activity_increment_ /= 0.95; }

void Solver::analyze(int conflict, Clause& learned, int& backtrack_level) {
  learned.clear();
  learned.push_back(Lit());  // placeholder for the asserting literal
  int counter = 0;
  Lit p;
  bool p_valid = false;
  std::size_t trail_index = trail_.size();
  const int current_level = static_cast<int>(trail_limits_.size());

  int reason_index = conflict;
  for (;;) {
    speccc_check(reason_index != -1, "analyze requires a reason clause");
    const Clause& reason = clauses_[reason_index].lits;
    for (std::size_t i = p_valid ? 1 : 0; i < reason.size(); ++i) {
      const Lit q = reason[i];
      if (seen_[q.var()] || vars_[q.var()].level == 0) continue;
      seen_[q.var()] = true;
      bump(q.var());
      if (vars_[q.var()].level >= current_level) {
        ++counter;
      } else {
        learned.push_back(q);
      }
    }
    // Select the next literal on the trail to resolve.
    do {
      --trail_index;
      p = trail_[trail_index];
    } while (!seen_[p.var()]);
    seen_[p.var()] = false;
    --counter;
    if (counter == 0) break;
    reason_index = vars_[p.var()].reason;
    p_valid = true;
    // For resolution steps, the reason clause's first literal is p itself.
    if (reason_index != -1) {
      Clause& rc = clauses_[reason_index].lits;
      if (rc[0] != p) {
        for (std::size_t k = 1; k < rc.size(); ++k) {
          if (rc[k] == p) {
            std::swap(rc[0], rc[k]);
            break;
          }
        }
      }
    }
  }
  learned[0] = p.negated();

  // Compute backtrack level = max level among learned[1..].
  backtrack_level = 0;
  std::size_t max_index = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    const int lvl = vars_[learned[i].var()].level;
    if (lvl > backtrack_level) {
      backtrack_level = lvl;
      max_index = i;
    }
  }
  if (learned.size() > 1) std::swap(learned[1], learned[max_index]);
  for (std::size_t i = 1; i < learned.size(); ++i) seen_[learned[i].var()] = false;
}

void Solver::backtrack(int level) {
  if (static_cast<int>(trail_limits_.size()) <= level) return;
  const int limit = trail_limits_[level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= limit; --i) {
    const int v = trail_[i].var();
    vars_[v].saved_phase = assign_[v] == Value::kTrue;
    assign_[v] = Value::kUndef;
    vars_[v].reason = -1;
  }
  trail_.resize(limit);
  trail_limits_.resize(level);
  queue_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  int best = -1;
  double best_activity = -1.0;
  for (int v = 0; v < num_vars(); ++v) {
    if (assign_[v] == Value::kUndef && vars_[v].activity > best_activity) {
      best = v;
      best_activity = vars_[v].activity;
    }
  }
  speccc_check(best >= 0, "pick_branch with full assignment");
  return Lit(best, vars_[best].saved_phase);
}

std::uint32_t Solver::clause_lbd(const Clause& clause) const {
  // Glucose's literal-block distance: the number of distinct decision
  // levels among the clause's literals, evaluated at learn time (callers
  // compute it before backtracking, while every literal is still
  // assigned). Learned clauses are short, so sort+unique beats a stamp
  // array here.
  std::vector<int> levels;
  levels.reserve(clause.size());
  for (const Lit l : clause) levels.push_back(vars_[l.var()].level);
  std::sort(levels.begin(), levels.end());
  return static_cast<std::uint32_t>(
      std::unique(levels.begin(), levels.end()) - levels.begin());
}

void Solver::reduce_learned() {
  speccc_check(trail_limits_.empty(), "reduce_learned above decision level 0");
  // Never delete: original clauses, reasons of (level-0) assignments, and
  // glue clauses (LBD <= 2 -- they connect at most two decision blocks and
  // are the ones worth keeping forever).
  std::vector<char> locked(clauses_.size(), 0);
  for (const Lit l : trail_) {
    const int reason = vars_[l.var()].reason;
    if (reason >= 0) locked[static_cast<std::size_t>(reason)] = 1;
  }
  std::vector<int> candidates;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i].learned && !locked[i] && clauses_[i].lbd > 2) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  // Delete the worse half: higher LBD first; within a tier, older first
  // (stable sort keeps index order, and smaller index = learned earlier).
  std::stable_sort(candidates.begin(), candidates.end(), [this](int a, int b) {
    return clauses_[static_cast<std::size_t>(a)].lbd >
           clauses_[static_cast<std::size_t>(b)].lbd;
  });
  const std::size_t to_delete = candidates.size() / 2;
  if (to_delete == 0) return;
  std::vector<char> drop(clauses_.size(), 0);
  for (std::size_t i = 0; i < to_delete; ++i) {
    drop[static_cast<std::size_t>(candidates[i])] = 1;
  }

  // Compact the clause vector, then rebuild every index that referenced
  // it: watcher lists from scratch, trail reasons via the remap (reasons
  // are locked, so they always survive).
  std::vector<int> remap(clauses_.size(), -1);
  std::vector<ClauseData> kept;
  kept.reserve(clauses_.size() - to_delete);
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (drop[i]) continue;
    remap[i] = static_cast<int>(kept.size());
    kept.push_back(std::move(clauses_[i]));
  }
  clauses_ = std::move(kept);
  for (auto& watchers : watches_) watchers.clear();
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    attach(static_cast<int>(i));
  }
  for (auto& v : vars_) {
    if (v.reason >= 0) v.reason = remap[static_cast<std::size_t>(v.reason)];
  }
  num_learned_ -= to_delete;
  stats_.deleted += to_delete;
  ++stats_.reductions;
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Knuth's formulation of the Luby sequence.
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) <= i + 1) ++k;
  while ((1ULL << k) - 1 != i + 1) {
    i = i - ((1ULL << k) - 1) + 1 - 1;
    k = 1;
    while ((1ULL << (k + 1)) <= i + 1) ++k;
  }
  return 1ULL << (k - 1);
}

void Solver::analyze_final(Lit failed, const std::vector<Lit>& assumptions) {
  core_.clear();
  failed_assumptions_.assign(static_cast<std::size_t>(num_vars()), false);
  // The falsified assumption itself is always part of the core (when it is
  // false at level 0 the clauses alone entail its negation, and {failed} is
  // the whole core).
  failed_assumptions_[failed.var()] = true;

  // Resolution walk (MiniSat's analyzeFinal): seed with the falsified
  // assumption's variable, then walk the trail top-down replacing every
  // implied literal by its reason clause until only decisions remain. At
  // this point every decision on the trail is an assumption decision:
  // normal decisions are only made once all assumptions hold, and then no
  // assumption can be found false.
  if (!trail_limits_.empty()) {
    seen_[failed.var()] = true;
    for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_limits_[0];
         --i) {
      const Lit p = trail_[static_cast<std::size_t>(i)];
      if (!seen_[p.var()]) continue;
      seen_[p.var()] = false;
      const int reason = vars_[p.var()].reason;
      if (reason == -1) {
        failed_assumptions_[p.var()] = true;
        continue;
      }
      for (const Lit q : clauses_[reason].lits) {
        if (q.var() != p.var() && vars_[q.var()].level > 0) {
          seen_[q.var()] = true;
        }
      }
    }
    // The seed may sit at level 0 (below the walk's range); leave seen_
    // clean for the next analyze().
    seen_[failed.var()] = false;
  }

  // Order the core like the assumptions vector: callers treat it as a
  // pruned copy of their query.
  for (const Lit a : assumptions) {
    if (failed_assumptions_[a.var()] &&
        std::find(core_.begin(), core_.end(), a) == core_.end()) {
      core_.push_back(a);
    }
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  core_.clear();
  failed_assumptions_.assign(static_cast<std::size_t>(num_vars()), false);
  if (unsat_) return Result::kUnsat;
  backtrack(0);
  if (propagate() != -1) {
    unsat_ = true;
    return Result::kUnsat;
  }
  // Long-lived incremental use: every solve() call is a level-0 point, so
  // enforce the learned-clause cap here -- a worker issuing thousands of
  // small queries plateaus instead of growing without bound.
  if (learned_cap_ != 0 && num_learned_ >= learned_cap_) reduce_learned();

  std::uint64_t restart_round = 0;
  std::uint64_t conflicts_until_restart = 64 * luby(restart_round);
  std::uint64_t conflicts_this_round = 0;

  for (;;) {
    const int conflict = propagate();
    if (conflict != -1) {
      ++stats_.conflicts;
      ++conflicts_this_round;
      if (trail_limits_.empty()) {
        unsat_ = true;
        return Result::kUnsat;
      }
      Clause learned;
      int backtrack_level = 0;
      analyze(conflict, learned, backtrack_level);
      // LBD must be measured before backtrack() unassigns the literals.
      const std::uint32_t lbd = clause_lbd(learned);
      // Never backtrack past the assumption prefix: if the learned clause
      // asserts below the number of assumptions taken, the assumptions
      // conflict.
      backtrack(backtrack_level);
      if (learned.size() == 1) {
        if (lit_value(learned[0]) == Value::kFalse) {
          unsat_ = true;
          return Result::kUnsat;
        }
        if (lit_value(learned[0]) == Value::kUndef) enqueue(learned[0], -1);
      } else {
        clauses_.push_back({learned, true, lbd});
        ++stats_.learned;
        ++num_learned_;
        attach(static_cast<int>(clauses_.size()) - 1);
        enqueue(learned[0], static_cast<int>(clauses_.size()) - 1);
      }
      decay();
      if (conflicts_this_round >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_round;
        conflicts_this_round = 0;
        conflicts_until_restart = 64 * luby(restart_round);
        backtrack(0);
        if (learned_cap_ != 0 && num_learned_ >= learned_cap_) {
          reduce_learned();
        }
      }
      continue;
    }

    // Re-apply assumptions that are not yet on the trail.
    bool assumption_conflict = false;
    bool made_decision = false;
    for (std::size_t i = 0; i < assumptions.size(); ++i) {
      const Lit l = assumptions[i];
      speccc_check(l.var() < num_vars(), "assumption on unknown variable");
      if (lit_value(l) == Value::kTrue) continue;
      if (lit_value(l) == Value::kFalse) {
        analyze_final(l, assumptions);
        assumption_conflict = true;
        break;
      }
      trail_limits_.push_back(static_cast<int>(trail_.size()));
      ++stats_.decisions;
      enqueue(l, -1);
      made_decision = true;
      break;
    }
    if (assumption_conflict) {
      backtrack(0);
      return Result::kUnsat;
    }
    if (made_decision) continue;

    // All assumptions hold; decide on the remaining variables.
    if (trail_.size() == static_cast<std::size_t>(num_vars())) {
      return Result::kSat;
    }
    trail_limits_.push_back(static_cast<int>(trail_.size()));
    ++stats_.decisions;
    enqueue(pick_branch(), -1);
  }
}

bool Solver::value(int var) const {
  speccc_check(var >= 0 && var < num_vars(), "value() variable out of range");
  speccc_check(assign_[var] != Value::kUndef, "value() on unassigned variable");
  return assign_[var] == Value::kTrue;
}

bool Solver::assumption_failed(Lit assumption) const {
  const int v = assumption.var();
  return v < static_cast<int>(failed_assumptions_.size()) &&
         failed_assumptions_[v];
}

}  // namespace speccc::sat
