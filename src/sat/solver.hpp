// CDCL SAT solver.
//
// This is the decision-procedure substrate for the time-abstraction
// optimizer (paper Section IV-E): the nonlinear constraint system (1)-(2) is
// bit-blasted by the smt:: layer onto this solver, mirroring the paper's use
// of Yices 2 "via bit-blasting".
//
// Features: two-watched-literal propagation, first-UIP clause learning,
// VSIDS-style activity decision heuristic with phase saving, Luby restarts,
// and solving under assumptions (the hook the optimizer uses for its
// descending bound search).
//
// Assumption cores: when solve(assumptions) returns kUnsat because the
// assumptions conflict, core() is the failed subset, computed MiniSat-style
// (analyze_final): a resolution walk from the falsified assumption back
// through the trail's reason clauses to the assumption decisions it rests
// on. Cores are ordered like the assumptions vector, so callers (the diag
// MUS shrinker) can treat them as a pruned copy of their query.
//
// Incremental use: the clause database -- including learned clauses -- is
// kept between solve() calls, so a sequence of related assumption queries
// (the MaxSAT/MCS loop, the descending bound search) reuses everything
// earlier conflicts taught the solver. Add clauses and variables freely
// between calls; only add_clause invalidates the model.
//
// Learned-clause reduction: unbounded retention is fine for batch-length
// runs but lets a long-lived serve worker's clause DB grow without bound.
// When the live learned-clause count reaches learned_cap() (default
// kDefaultLearnedCap; 0 disables), the solver deletes the worse half of
// the deletable learned clauses, Glucose-style: clauses with LBD <= 2
// ("glue"), clauses currently acting as a reason on the trail, and
// original clauses are never deleted; among the rest, higher-LBD and
// older clauses go first. Reduction runs at decision level 0 (solve()
// entry and restarts), never mid-search, and is always sound -- learned
// clauses are implied, so deleting them can only cost repeated work.
// Short runs never reach the default cap and behave exactly as before.
//
// Clause storage: clauses live in one flat 32-bit word arena
// ([size][(lbd<<1)|learned][lit codes...] per clause, referenced by the
// offset of the header word) instead of per-clause heap vectors, so
// propagate() walks contiguous memory and reduce_learned() compacts the
// arena in place (remapping watcher refs and trail reasons). Binary
// clauses never enter the arena at all: each lives directly in its two
// watcher lists (the watcher's blocker IS the other literal), and a
// binary reason is encoded as a tagged literal code rather than a clause
// reference -- propagation on binaries touches no clause memory.
#pragma once

#include <cstdint>
#include <vector>

namespace speccc::sat {

/// A literal: variable index v (0-based) with polarity. Encoded as 2*v or
/// 2*v+1 (negated).
class Lit {
 public:
  Lit() = default;
  Lit(int var, bool positive) : code_(2 * var + (positive ? 0 : 1)) {}

  [[nodiscard]] int var() const { return code_ >> 1; }
  [[nodiscard]] bool positive() const { return (code_ & 1) == 0; }
  [[nodiscard]] Lit negated() const { return from_code(code_ ^ 1); }
  [[nodiscard]] int code() const { return code_; }

  static Lit from_code(int code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }

 private:
  int code_ = -1;
};

using Clause = std::vector<Lit>;

enum class Result { kSat, kUnsat };

class Solver {
 public:
  Solver() = default;

  /// Create a fresh variable; returns its index.
  int new_var();

  [[nodiscard]] int num_vars() const { return static_cast<int>(assign_.size()); }

  /// Add a clause (disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable.
  void add_clause(Clause clause);
  void add_unit(Lit l) { add_clause({l}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

  /// Solve the current clause set under the given assumptions.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// After kSat: the value assigned to a variable.
  [[nodiscard]] bool value(int var) const;

  /// After kUnsat under assumptions: the subset of the assumptions the
  /// conflict actually rests on, in assumption order. Asserting exactly
  /// these literals again yields kUnsat. Empty when the clause set is
  /// unsatisfiable on its own (no assumption needed).
  [[nodiscard]] const std::vector<Lit>& core() const { return core_; }

  /// After kUnsat under assumptions: true if the assumption literal is in
  /// core().
  [[nodiscard]] bool assumption_failed(Lit assumption) const;

  /// Statistics, for the benchmark harness. `learned` counts clauses ever
  /// learned (monotone); `deleted` counts clauses removed by reduction, so
  /// live learned clauses = learned - deleted (also num_learned()).
  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;
    std::uint64_t reductions = 0;
    std::uint64_t deleted = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Learned-clause retention cap (see the header comment). 0 disables
  /// reduction entirely (the pre-reduction behavior).
  static constexpr std::size_t kDefaultLearnedCap = 10'000;
  void set_learned_cap(std::size_t cap) { learned_cap_ = cap; }
  [[nodiscard]] std::size_t learned_cap() const { return learned_cap_; }
  /// Live learned clauses currently in the database.
  [[nodiscard]] std::size_t num_learned() const { return num_learned_; }
  /// Total clauses (original + live learned, including binaries stored
  /// inline in the watcher lists) -- the memory-relevant counter the
  /// long-lived-worker test pins.
  [[nodiscard]] std::size_t num_clauses() const { return num_clauses_; }

 private:
  enum class Value : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  // Tagged 32-bit clause references.
  //
  // A plain value < kBinaryTag is an offset into arena_ pointing at a
  // clause header. As a *reason*, kBinaryTag | code means "the binary
  // clause {implied_lit, Lit::from_code(code)}". kRefNone marks "no
  // reason" (decisions / unassigned); kConflictBinary is propagate()'s
  // return for a binary-clause conflict, whose two literals are then in
  // binary_conflict_.
  static constexpr std::uint32_t kRefNone = 0xFFFFFFFFu;
  static constexpr std::uint32_t kConflictBinary = 0xFFFFFFFEu;
  static constexpr std::uint32_t kBinaryTag = 0x80000000u;
  [[nodiscard]] static bool is_arena_ref(std::uint32_t ref) {
    return (ref & kBinaryTag) == 0;
  }

  struct Watcher {
    // Arena ref of the watched clause, or kBinaryTag | other_lit_code for
    // a binary clause living entirely in the watcher lists.
    std::uint32_t ref;
    // For arena clauses a cached literal whose truth satisfies the clause
    // (skip the memory touch); for binaries, THE other literal.
    Lit blocker;
  };

  struct VarInfo {
    std::uint32_t reason = kRefNone;  // tagged ref that implied this var
    int level = 0;
    double activity = 0.0;
    bool saved_phase = false;
  };

  [[nodiscard]] Value lit_value(Lit l) const;
  void analyze_final(Lit failed, const std::vector<Lit>& assumptions);
  void enqueue(Lit l, std::uint32_t reason);
  std::uint32_t propagate();  // tagged conflict ref, or kRefNone if none
  void analyze(std::uint32_t conflict, Clause& learned, int& backtrack_level);
  bool lit_redundant(Lit p);
  void backtrack(int level);
  void bump(int var);
  void decay();
  Lit pick_branch();
  void heap_insert(int var);
  void heap_up(std::size_t i);
  void heap_down(std::size_t i);
  std::uint32_t alloc_clause(const Clause& clause, bool learned,
                             std::uint32_t lbd);
  void attach(std::uint32_t ref);
  void attach_binary(Lit a, Lit b);
  [[nodiscard]] std::uint32_t clause_lbd(const Clause& clause) const;
  void reduce_learned();  // requires decision level 0
  static std::uint64_t luby(std::uint64_t i);

  // Flat clause arena: [size][(lbd << 1) | learned][size literal codes]
  // per clause; refs are offsets of the header word. Compacted in place
  // by reduce_learned(). Binary clauses are not stored here.
  std::vector<std::uint32_t> arena_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal code
  std::vector<Value> assign_;
  std::vector<VarInfo> vars_;
  std::vector<Lit> trail_;
  std::vector<int> trail_limits_;
  std::size_t queue_head_ = 0;
  // VSIDS order heap: binary max-heap of candidate decision vars by
  // activity. Vars are re-inserted as backtracking unassigns them; stale
  // (assigned) entries are discarded lazily in pick_branch. Uniform
  // activity rescaling preserves the heap order, so bump() only has to
  // sift the bumped var.
  std::vector<int> heap_;
  std::vector<int> heap_pos_;  // var -> index in heap_, -1 when absent
  double activity_increment_ = 1.0;
  std::size_t learned_cap_ = kDefaultLearnedCap;
  std::size_t num_learned_ = 0;
  std::size_t num_clauses_ = 0;
  bool unsat_ = false;
  Lit binary_conflict_[2];  // the literals behind a kConflictBinary return
  std::vector<Lit> core_;
  std::vector<bool> failed_assumptions_;
  std::vector<bool> seen_;
  // Scratch for conflict-clause minimization (analyze/lit_redundant).
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;
  Stats stats_;
};

}  // namespace speccc::sat
