// Thin POSIX TCP plumbing for the NDJSON protocol: a move-only socket
// wrapper, a loopback listener (port 0 = kernel-chosen ephemeral port,
// reported back for --port-file scripting), a client dial, and a buffered
// '\n'-framed line reader. Everything interesting about the daemon lives
// above this layer (serve/service.hpp, serve/protocol.hpp); this one
// exists so sockets never leak into testable code. Errors are
// util::InvalidInputError with errno text; EOF is a clean false from
// read_line, not an error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace speccc::serve::net {

/// Move-only owning fd wrapper. send_all loops over partial writes and
/// suppresses SIGPIPE (a vanished peer is a normal serve event).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Write the whole buffer; returns false when the peer is gone.
  bool send_all(std::string_view data);
  /// Read up to `max` bytes; 0 = EOF, negative never (throws on error
  /// other than EINTR, which retries).
  std::size_t recv_some(char* buffer, std::size_t max);
  void close();

 private:
  int fd_ = -1;
};

/// A listening loopback TCP socket. Port 0 asks the kernel for an
/// ephemeral port; port() reports the one actually bound.
class Listener {
 public:
  /// Binds 127.0.0.1:port and listens. Throws util::InvalidInputError on
  /// bind failure (port taken, no permission).
  explicit Listener(std::uint16_t port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Block until a client connects; empty on EINTR (signal) or a closed
  /// listener, so a drain loop can re-check its stop flag.
  [[nodiscard]] std::optional<Socket> accept_client();
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:port. Throws util::InvalidInputError on refusal.
[[nodiscard]] Socket dial(std::uint16_t port);

/// Buffered newline framing over a Socket. Lines are returned without the
/// trailing '\n' (a final unterminated chunk before EOF counts as a line).
class LineReader {
 public:
  explicit LineReader(Socket& socket) : socket_(&socket) {}

  /// False on EOF with no buffered data; true otherwise with `line` set.
  bool read_line(std::string& line);

 private:
  Socket* socket_;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool eof_ = false;
};

}  // namespace speccc::serve::net
