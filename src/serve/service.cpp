#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

namespace speccc::serve {

namespace {

/// Pop order: lowest (priority, seq) first. std::push_heap/pop_heap keep
/// the *largest* element at the front, so "greater" here means "served
/// later".
struct ItemLater {
  bool operator()(const auto& a, const auto& b) const {
    if (a.request.priority != b.request.priority) {
      return a.request.priority > b.request.priority;
    }
    return a.seq > b.seq;
  }
};

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

const char* response_kind_name(ResponseKind kind) {
  switch (kind) {
    case ResponseKind::kResult: return "result";
    case ResponseKind::kRejected: return "rejected";
    case ResponseKind::kDeadlineExceeded: return "deadline-exceeded";
    case ResponseKind::kError: return "error";
  }
  return "unknown";
}

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  if (options_.workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  runner_options_.pipeline = options_.pipeline;
  queue_.reserve(options_.queue_capacity);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Service::~Service() { shutdown(); }

double Service::retry_hint_locked() const {
  // Expected time for the backlog to clear one slot: the whole queue's
  // worth of work spread over the workers. Floored so a hint of ~0 never
  // invites a hot retry loop.
  const double backlog = static_cast<double>(queue_.size() + 1);
  const double hint =
      ewma_run_seconds_ * backlog / static_cast<double>(options_.workers);
  return std::max(hint, 0.01);
}

bool Service::submit(Request request, Callback done) {
  Response rejection;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++submitted_;
    if (!draining_ && queue_.size() < options_.queue_capacity) {
      ++accepted_;
      Item item;
      item.seq = next_seq_++;
      item.enqueued_at = Clock::now();
      double deadline = request.deadline_seconds > 0.0
                            ? request.deadline_seconds
                            : options_.default_deadline_seconds;
      if (deadline > 0.0) {
        item.has_deadline = true;
        item.deadline_at =
            item.enqueued_at + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(deadline));
      }
      item.request = std::move(request);
      item.done = std::move(done);
      queue_.push_back(std::move(item));
      std::push_heap(queue_.begin(), queue_.end(), ItemLater{});
      cv_.notify_one();
      return true;
    }
    ++rejected_;
    rejection.id = std::move(request.id);
    rejection.kind = ResponseKind::kRejected;
    rejection.error = draining_ ? "service is shutting down"
                                : "admission queue is full";
    rejection.retry_after_seconds = draining_ ? 0.0 : retry_hint_locked();
  }
  if (done) done(std::move(rejection));
  return false;
}

Response Service::check(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  submit(std::move(request),
         [&promise](Response r) { promise.set_value(std::move(r)); });
  return future.get();
}

void Service::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_ && workers_.empty()) return;
    draining_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServiceStats Service::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  ServiceStats s;
  s.submitted = submitted_;
  s.accepted = accepted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.deadline_exceeded = deadline_exceeded_;
  s.errors = errors_;
  s.queue_depth = queue_.size();
  s.workers = options_.workers;
  return s;
}

void Service::worker_loop(int worker_id) {
  batch::TaskRunner runner(worker_id, runner_options_);
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      std::pop_heap(queue_.begin(), queue_.end(), ItemLater{});
      item = std::move(queue_.back());
      queue_.pop_back();
    }
    process(std::move(item), runner);
  }
}

void Service::process(Item item, batch::TaskRunner& runner) {
  const Clock::time_point picked_up = Clock::now();

  Response response;
  response.id = item.request.id;
  response.queue_seconds = seconds_between(item.enqueued_at, picked_up);

  double budget_seconds = 0.0;
  bool expired_in_queue = false;
  if (item.has_deadline) {
    budget_seconds = seconds_between(picked_up, item.deadline_at);
    expired_in_queue = budget_seconds <= 0.0;
  }

  if (expired_in_queue) {
    // Never silently dropped: the caller hears that its deadline passed
    // while the request was still queued.
    response.kind = ResponseKind::kDeadlineExceeded;
    response.error = "deadline expired while queued";
  } else {
    batch::RunLimits limits;
    limits.budget_seconds = budget_seconds;  // 0 = unlimited
    if (item.request.substrate.has_value()) {
      limits.substrate = &*item.request.substrate;
    }
    batch::TaskResult result = runner.run(item.request.spec, limits);
    if (result.status == batch::TaskStatus::kBudgetExhausted &&
        item.has_deadline) {
      response.kind = ResponseKind::kDeadlineExceeded;
      response.error = "deadline expired while running";
    } else {
      response.kind = ResponseKind::kResult;
    }
    response.result = std::move(result);
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    switch (response.kind) {
      case ResponseKind::kResult: ++completed_; break;
      case ResponseKind::kDeadlineExceeded: ++deadline_exceeded_; break;
      default: ++errors_; break;
    }
    if (response.kind == ResponseKind::kResult) {
      // EWMA over completed runs only; expired-in-queue answers carry no
      // run-time signal.
      constexpr double kAlpha = 0.2;
      ewma_run_seconds_ =
          (1.0 - kAlpha) * ewma_run_seconds_ + kAlpha * response.result.seconds;
    }
  }

  if (item.done) item.done(std::move(response));
}

}  // namespace speccc::serve
