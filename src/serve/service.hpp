// Long-running consistency-checking service: the resident engine behind
// tools/speccc_serve (ROADMAP item 1, the "millions of users" story; cf.
// Vuotto 2018's continuously-checked requirement sets). Batch gave
// throughput on a corpus known upfront; Service gives latency and
// multi-tenancy on requests that keep arriving.
//
// Architecture: N worker threads, each owning a warm batch::TaskRunner
// (one core::Pipeline built once -- lexicon, dictionary, translator; the
// expensive construction never recurs per request), all sharing ONE
// cache::Store via ServiceOptions::pipeline.cache -- the sanctioned
// exception to the per-worker-isolation threading rule, exactly as in
// src/batch. A resident store plus kLru eviction is what makes the serve
// workload fast: hot specifications recur indefinitely.
//
// Admission control: a bounded priority queue (lower priority value =
// served sooner; FIFO within a priority via sequence numbers). When the
// queue is full -- or the service is draining -- submit() REJECTS the
// request immediately (429-style) with a retry-after hint derived from an
// EWMA of recent run times, instead of queueing unboundedly. Every
// admitted request gets exactly one response; nothing is silently
// dropped.
//
// Deadlines: a request's relative deadline (or the service default) is
// pinned to an absolute steady-clock instant at admission, so queue time
// counts against it. A request already past its deadline when a worker
// picks it up answers kDeadlineExceeded without running; one that expires
// mid-run is cancelled cooperatively through the existing
// PipelineOptions::cancelled budget plumbing (batch::RunLimits) and also
// answers kDeadlineExceeded.
//
// Shutdown: shutdown() stops admissions, lets the workers drain every
// queued and in-flight request, then joins them -- the SIGINT/SIGTERM
// contract of speccc_serve (drain, then exit 0). Idempotent; the
// destructor calls it.
//
// Transport-free by design: this header knows nothing about sockets or
// JSON. serve/protocol.hpp maps wire lines onto Request/Response and
// serve/net.hpp carries the bytes, so everything above can be tested (and
// benchmarked -- bench_serve) fully in-process.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch.hpp"
#include "cache/store.hpp"
#include "core/pipeline.hpp"
#include "core/substrate.hpp"

namespace speccc::serve {

struct ServiceOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int workers = 0;
  /// Bounded admission queue: submissions beyond this many queued (not yet
  /// running) requests are rejected with a retry hint. Must be >= 1.
  std::size_t queue_capacity = 256;
  /// Deadline applied to requests that do not carry their own; 0 means
  /// unlimited.
  double default_deadline_seconds = 0.0;
  /// Per-worker pipeline configuration. `cancelled` is overwritten by the
  /// runner plumbing; `cache`, when set, is shared by every worker.
  core::PipelineOptions pipeline;
};

/// One admitted unit of work: a named specification with scheduling
/// metadata. `id` is the caller's correlation token, echoed verbatim.
struct Request {
  std::string id;
  batch::SpecTask spec;
  /// Lower = served sooner; FIFO within a priority class.
  int priority = 0;
  /// Relative deadline in seconds, measured from admission (queue time
  /// counts). <= 0 means "use the service default".
  double deadline_seconds = 0.0;
  /// Per-request substrate override (the wire protocol's optional
  /// "substrate" field): replaces the service pipeline's configured spec
  /// for this request only. Canonical output is unaffected -- substrates
  /// agree -- so mixed-substrate traffic stays byte-comparable with batch.
  std::optional<core::SubstrateSpec> substrate;
};

enum class ResponseKind {
  kResult,            ///< the pipeline ran to a verdict (see result.status)
  kRejected,          ///< backpressure: not admitted; retry_after_seconds set
  kDeadlineExceeded,  ///< deadline passed while queued or mid-run
  kError,             ///< internal failure outside the pipeline proper
};

[[nodiscard]] const char* response_kind_name(ResponseKind kind);

struct Response {
  std::string id;
  ResponseKind kind = ResponseKind::kError;
  /// Valid for kResult (always) and kDeadlineExceeded when the request
  /// expired mid-run (status kBudgetExhausted; partial diagnostics).
  batch::TaskResult result;
  double queue_seconds = 0.0;  ///< admission -> worker pickup
  /// kRejected only: the client should wait this long before retrying.
  double retry_after_seconds = 0.0;
  std::string error;  ///< human-readable cause for non-kResult kinds
};

/// Monotone service counters (a snapshot; see Service::stats()).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;          ///< answered kResult
  std::uint64_t deadline_exceeded = 0;  ///< answered kDeadlineExceeded
  std::uint64_t errors = 0;             ///< answered kError
  std::size_t queue_depth = 0;          ///< point-in-time
  int workers = 0;
};

class Service {
 public:
  using Callback = std::function<void(Response)>;

  explicit Service(ServiceOptions options);
  ~Service();  // drains (shutdown())
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admit a request. Returns true when queued: `done` will be invoked
  /// exactly once, on a worker thread, when the request resolves. Returns
  /// false on rejection (queue full or draining): `done` has already been
  /// invoked synchronously with the kRejected response. Keep callbacks
  /// cheap; they run on the worker that finished the task.
  bool submit(Request request, Callback done);

  /// Synchronous convenience for tests and benchmarks: submit + wait.
  [[nodiscard]] Response check(Request request);

  /// Stop admitting, drain every queued and in-flight request, join the
  /// workers. Idempotent; submit() after this rejects.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Item {
    Request request;
    Callback done;
    std::uint64_t seq = 0;
    Clock::time_point enqueued_at;
    bool has_deadline = false;
    Clock::time_point deadline_at;
  };

  void worker_loop(int worker_id);
  void process(Item item, batch::TaskRunner& runner);
  [[nodiscard]] double retry_hint_locked() const;

  ServiceOptions options_;
  batch::RunnerOptions runner_options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Item> queue_;  // heap ordered by (priority, seq)
  std::uint64_t next_seq_ = 0;
  bool draining_ = false;
  double ewma_run_seconds_ = 0.05;  // retry-hint seed before any sample

  std::vector<std::thread> workers_;

  // Counters (guarded by mutex_; queue_depth derived from queue_).
  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace speccc::serve
