#include "serve/protocol.hpp"

#include <cmath>

#include "serve/json.hpp"
#include "util/diagnostics.hpp"

namespace speccc::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw util::ParseError("protocol: " + what);
}

std::string field_string(const json::Value& object, std::string_view key) {
  const json::Value* v = object.find(key);
  if (v == nullptr) fail("missing \"" + std::string(key) + "\"");
  if (v->kind() != json::Kind::kString) {
    fail("\"" + std::string(key) + "\" must be a string");
  }
  return v->as_string();
}

std::string optional_string(const json::Value& object, std::string_view key) {
  const json::Value* v = object.find(key);
  if (v == nullptr || v->is_null()) return {};
  if (v->kind() != json::Kind::kString) {
    fail("\"" + std::string(key) + "\" must be a string");
  }
  return v->as_string();
}

double optional_number(const json::Value& object, std::string_view key,
                       double fallback) {
  const json::Value* v = object.find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (v->kind() != json::Kind::kNumber) {
    fail("\"" + std::string(key) + "\" must be a number");
  }
  return v->as_number();
}

/// "requirements": an array of sentences, each either a plain string
/// (ids default to R1, R2, ... in order) or {"id": ..., "text": ...}.
std::vector<translate::RequirementText> parse_requirements(
    const json::Value& object) {
  const json::Value* v = object.find("requirements");
  if (v == nullptr) fail("missing \"requirements\"");
  if (v->kind() != json::Kind::kArray) {
    fail("\"requirements\" must be an array");
  }
  std::vector<translate::RequirementText> out;
  out.reserve(v->as_array().size());
  std::size_t index = 0;
  for (const json::Value& item : v->as_array()) {
    ++index;
    translate::RequirementText req;
    if (item.kind() == json::Kind::kString) {
      req.id = "R" + std::to_string(index);
      req.text = item.as_string();
    } else if (item.kind() == json::Kind::kObject) {
      req.text = field_string(item, "text");
      req.id = optional_string(item, "id");
      if (req.id.empty()) req.id = "R" + std::to_string(index);
    } else {
      fail("requirement " + std::to_string(index) +
           " must be a string or an {\"id\",\"text\"} object");
    }
    if (req.text.empty()) {
      fail("requirement " + std::to_string(index) + " has empty text");
    }
    out.push_back(std::move(req));
  }
  if (out.empty()) fail("\"requirements\" is empty");
  return out;
}

long long to_ms(double seconds) {
  return static_cast<long long>(std::llround(seconds * 1000.0));
}

void put_ms(json::Object& o, const char* key, double seconds) {
  o[key] = json::Value(static_cast<std::int64_t>(to_ms(seconds)));
}

/// Strip canonical_line's trailing newline for embedding as a JSON string;
/// clients re-append '\n' when reconstructing batch-comparable output.
std::string canonical_field(const batch::TaskResult& result) {
  std::string line = batch::canonical_line(result);
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

const char* realizability_name(synth::Realizability r) {
  switch (r) {
    case synth::Realizability::kRealizable: return "realizable";
    case synth::Realizability::kUnrealizable: return "unrealizable";
    case synth::Realizability::kUnknown: return "unknown";
  }
  return "?";
}

/// Per-racer diagnostics of a raced result. Excluded from the embedded
/// canonical row (which racer wins is timing-dependent); rides along like
/// queue_ms/cache.
json::Value substrates_array(const core::PortfolioStats& portfolio) {
  json::Array runs;
  runs.reserve(portfolio.runs.size());
  for (const core::SubstrateRunStats& run : portfolio.runs) {
    json::Object o;
    o["name"] = json::Value(run.name);
    o["verdict"] = json::Value(realizability_name(run.verdict));
    put_ms(o, "run_ms", run.wall_seconds);
    o["won"] = json::Value(run.won);
    o["cancelled"] = json::Value(run.cancelled);
    if (!run.error.empty()) o["error"] = json::Value(run.error);
    runs.push_back(json::Value(std::move(o)));
  }
  return json::Value(std::move(runs));
}

json::Object cache_object(const cache::StatsSnapshot& c) {
  json::Object o;
  o["l1_hits"] = json::Value(static_cast<std::int64_t>(c.l1_hits));
  o["l1_misses"] = json::Value(static_cast<std::int64_t>(c.l1_misses));
  o["l2_hits"] = json::Value(static_cast<std::int64_t>(c.l2_hits));
  o["l2_misses"] = json::Value(static_cast<std::int64_t>(c.l2_misses));
  o["evictions"] = json::Value(static_cast<std::int64_t>(c.evictions));
  return o;
}

std::string render(const json::Object& object) {
  std::string out;
  json::write(out, json::Value(object));
  return out;
}

}  // namespace

ParsedRequest parse_request(std::string_view line) {
  const json::Value doc = json::parse(line);
  if (doc.kind() != json::Kind::kObject) fail("request must be an object");

  ParsedRequest parsed;
  parsed.id = optional_string(doc, "id");

  const std::string method = field_string(doc, "method");
  if (method == "ping") {
    parsed.method = Method::kPing;
  } else if (method == "stats") {
    parsed.method = Method::kStats;
  } else if (method == "shutdown") {
    parsed.method = Method::kShutdown;
  } else if (method == "check") {
    parsed.method = Method::kCheck;
    Request& request = parsed.request;
    request.spec.name = optional_string(doc, "name");
    if (request.spec.name.empty()) request.spec.name = "spec";
    if (parsed.id.empty()) parsed.id = request.spec.name;
    request.id = parsed.id;
    request.spec.requirements = parse_requirements(doc);
    const double priority = optional_number(doc, "priority", 0.0);
    request.priority = static_cast<int>(priority);
    const double deadline_ms = optional_number(doc, "deadline_ms", 0.0);
    if (deadline_ms < 0.0) fail("\"deadline_ms\" must be >= 0");
    request.deadline_seconds = deadline_ms / 1000.0;
    // Optional per-request substrate override ("auto", a substrate name,
    // or "race:a,b,..."); an unparseable spec is a protocol error like any
    // other malformed field.
    const std::string substrate = optional_string(doc, "substrate");
    if (!substrate.empty()) {
      try {
        request.substrate = core::SubstrateSpec::parse(substrate);
      } catch (const util::InvalidInputError& e) {
        fail(e.what());
      }
    }
  } else {
    fail("unknown method \"" + method + "\"");
  }
  return parsed;
}

std::string render_response(const Response& response) {
  json::Object o;
  o["id"] = json::Value(response.id);
  o["kind"] = json::Value(response_kind_name(response.kind));
  switch (response.kind) {
    case ResponseKind::kRejected:
      o["error"] = json::Value(response.error);
      put_ms(o, "retry_after_ms", response.retry_after_seconds);
      break;
    case ResponseKind::kError:
      o["error"] = json::Value(response.error);
      break;
    case ResponseKind::kDeadlineExceeded:
      o["error"] = json::Value(response.error);
      put_ms(o, "queue_ms", response.queue_seconds);
      put_ms(o, "run_ms", response.result.seconds);
      break;
    case ResponseKind::kResult: {
      const batch::TaskResult& r = response.result;
      o["name"] = json::Value(r.name);
      o["status"] = json::Value(batch::status_name(r.status));
      o["canonical"] = json::Value(canonical_field(r));
      put_ms(o, "queue_ms", response.queue_seconds);
      put_ms(o, "run_ms", r.seconds);
      // Substrate diagnostics (never part of "canonical"): which substrate
      // decided the spec, and the per-racer stats when it was raced.
      if (!r.substrate.empty()) o["substrate"] = json::Value(r.substrate);
      if (r.portfolio.has_value()) {
        o["won"] = json::Value(r.portfolio->winner);
        o["substrates"] = substrates_array(*r.portfolio);
      }
      // Per-request cache accounting (thread-local deltas); all-zero when
      // the server runs without a store, so only emitted when non-zero.
      const cache::StatsSnapshot& c = r.cache;
      if (c.hits() + c.misses() + c.evictions > 0) {
        o["cache"] = json::Value(cache_object(c));
      }
      break;
    }
  }
  return render(o);
}

std::string render_error(std::string_view id, std::string_view message) {
  json::Object o;
  o["id"] = json::Value(std::string(id));
  o["kind"] = json::Value("error");
  o["error"] = json::Value(std::string(message));
  return render(o);
}

std::string render_pong(std::string_view id) {
  json::Object o;
  o["id"] = json::Value(std::string(id));
  o["kind"] = json::Value("pong");
  return render(o);
}

std::string render_stats(std::string_view id, const ServiceStats& stats,
                         const cache::Store* store) {
  json::Object o;
  o["id"] = json::Value(std::string(id));
  o["kind"] = json::Value("stats");
  o["submitted"] = json::Value(static_cast<std::int64_t>(stats.submitted));
  o["accepted"] = json::Value(static_cast<std::int64_t>(stats.accepted));
  o["rejected"] = json::Value(static_cast<std::int64_t>(stats.rejected));
  o["completed"] = json::Value(static_cast<std::int64_t>(stats.completed));
  o["deadline_exceeded"] =
      json::Value(static_cast<std::int64_t>(stats.deadline_exceeded));
  o["errors"] = json::Value(static_cast<std::int64_t>(stats.errors));
  o["queue_depth"] = json::Value(static_cast<std::int64_t>(stats.queue_depth));
  o["workers"] = json::Value(static_cast<std::int64_t>(stats.workers));
  if (store != nullptr) {
    json::Object c = cache_object(store->stats());
    c["entries"] = json::Value(static_cast<std::int64_t>(store->size()));
    c["eviction"] =
        json::Value(cache::eviction_name(store->options().eviction));
    o["cache"] = json::Value(std::move(c));
  }
  return render(o);
}

std::string render_shutting_down(std::string_view id) {
  json::Object o;
  o["id"] = json::Value(std::string(id));
  o["kind"] = json::Value("shutting-down");
  return render(o);
}

}  // namespace speccc::serve
