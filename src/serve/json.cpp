#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/diagnostics.hpp"

namespace speccc::serve::json {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw util::ParseError("json: " + what);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) fail("expected a boolean");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) fail("expected a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) fail("expected a string");
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) fail("expected an array");
  return array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) fail("expected an object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = value(0);
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;  // one protocol line, not a tree dump

  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_space();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Value(string());
      case 't':
        if (consume_keyword("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_keyword("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_keyword("null")) return Value();
        fail("invalid literal");
      default: return number();
    }
  }

  Value object(int depth) {
    expect('{');
    Object members;
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    for (;;) {
      skip_space();
      std::string key = string();
      skip_space();
      expect(':');
      members[std::move(key)] = value(depth + 1);
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value array(int depth) {
    expect('[');
    Array items;
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    for (;;) {
      items.push_back(value(depth + 1));
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(items));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("unknown escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code += static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code += static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code += static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    // Surrogate pair: a high surrogate must be followed by \uDC00-\uDFFF.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double parsed = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, parsed);
    if (ec != std::errc{} || end != text_.data() + pos_ || pos_ == start) {
      fail("invalid number");
    }
    return Value(parsed);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

void write_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";  // JSON has no NaN/Inf; the protocol never produces them
    return;
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void write(std::string& out, const Value& value) {
  switch (value.kind()) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += value.as_bool() ? "true" : "false"; return;
    case Kind::kNumber: write_number(out, value.as_number()); return;
    case Kind::kString: write_string(out, value.as_string()); return;
    case Kind::kArray: {
      out += '[';
      const Array& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        write(out, items[i]);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      const Object& members = value.as_object();
      std::size_t i = 0;
      for (const auto& [key, member] : members) {
        if (i++ > 0) out += ',';
        write_string(out, key);
        out += ':';
        write(out, member);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace speccc::serve::json
