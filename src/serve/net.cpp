#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/diagnostics.hpp"

namespace speccc::serve::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw util::InvalidInputError("net: " + what + ": " + std::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(std::string_view data) {
  while (!data.empty()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd_, data.data(), data.size(), 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone (EPIPE/ECONNRESET): not an error for us
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::size_t Socket::recv_some(char* buffer, std::size_t max) {
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, max, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return 0;  // abrupt close = EOF for framing
    fail("recv");
  }
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, SOMAXCONN) < 0) fail("listen");
  // Recover the kernel-chosen port when 0 was requested.
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Listener::~Listener() { close(); }

std::optional<Socket> Listener::accept_client() {
  if (fd_ < 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;  // EINTR (signal) or closed listener
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(client);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr = loopback(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      break;
    }
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect 127.0.0.1:" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

bool LineReader::read_line(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      line.assign(buffer_, pos_, newline - pos_);
      pos_ = newline + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      return true;
    }
    if (eof_) {
      if (pos_ < buffer_.size()) {  // final unterminated line
        line.assign(buffer_, pos_, buffer_.size() - pos_);
        pos_ = buffer_.size();
        return true;
      }
      return false;
    }
    char chunk[4096];
    const std::size_t n = socket_->recv_some(chunk, sizeof chunk);
    if (n == 0) {
      eof_ = true;
    } else {
      buffer_.append(chunk, n);
    }
  }
}

}  // namespace speccc::serve::net
