// Minimal JSON for the serve wire protocol (protocol.hpp): a tree value
// type, a strict recursive-descent parser, and escape/number writers.
//
// Scope: exactly what newline-delimited JSON framing needs -- UTF-8
// passthrough (\uXXXX escapes are decoded to UTF-8 on parse), doubles for
// every number, no comments, no trailing commas. Documents are one
// protocol line, so the nesting depth cap is small and malformed input is
// a util::ParseError, never UB. This is deliberately not a general JSON
// library; the batch report writer keeps its own streaming emitter.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace speccc::serve::json {

class Value;
using Array = std::vector<Value>;
/// std::map, not unordered: rendering iterates members in key order, so
/// emitted objects are deterministic (the protocol tests pin bytes).
using Object = std::map<std::string, Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;  // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double n) : kind_(Kind::kNumber), number_(n) {}
  Value(std::int64_t n) : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  // Checked accessors: util::ParseError on kind mismatch, so protocol
  // handlers can cast freely and report one coherent error per line.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; null value when absent (or when not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse one complete JSON document. Trailing non-whitespace (a second
/// value on the line) is an error. Throws util::ParseError.
[[nodiscard]] Value parse(std::string_view text);

/// Append the JSON string literal (quotes included) for `text`.
void write_string(std::string& out, std::string_view text);

/// Append a JSON number: integers exactly, doubles with enough digits to
/// round-trip.
void write_number(std::string& out, double value);

/// Render a full value tree (object members in key order).
void write(std::string& out, const Value& value);

}  // namespace speccc::serve::json
