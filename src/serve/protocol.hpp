// The speccc_serve wire protocol: newline-delimited JSON (NDJSON), one
// JSON object per line in each direction, over any byte stream (TCP in
// practice; plain strings in the tests). Chosen over HTTP deliberately:
// framing is one '\n', requests pipeline naturally on a single
// connection, and a soak client is a loop around getline.
//
// Requests ({"method": ...}):
//   check     {"method":"check","id":"r1","name":"spec-1",
//              "requirements":["the door is open", ...]        // or
//              "requirements":[{"id":"R1","text":"..."}, ...],
//              "priority":0, "deadline_ms":500}
//             id defaults to name; priority and deadline_ms are optional
//             (deadline_ms 0 / absent = the server default).
//   ping      {"method":"ping","id":"p1"}           liveness probe
//   stats     {"method":"stats","id":"s1"}          service + cache counters
//   shutdown  {"method":"shutdown","id":"q1"}       drain and exit (as if
//                                                   SIGTERM'd)
//
// Responses echo "id" and carry "kind":
//   result             verdict reached; "status" is the batch TaskStatus
//                      name and "canonical" is EXACTLY the line
//                      `speccc_batch --canonical` prints for this spec
//                      (trailing newline stripped) -- the byte-comparable
//                      determinism bridge between daemon and batch.
//                      "queue_ms"/"run_ms" and, when the server runs with
//                      a cache, per-request "cache" hit/miss counters ride
//                      along as diagnostics.
//   rejected           backpressure; "retry_after_ms" says when to retry
//   deadline-exceeded  the deadline passed while queued or mid-run
//   error              malformed line or internal failure; "error" says why
//   pong / stats / shutting-down   for the non-check methods
//
// One response per request, in per-connection completion order (NOT
// submission order -- priorities and deadlines reorder); correlate by id.
// A malformed line yields one "error" response and the connection stays
// open. See docs/TOOLS.md for the full field reference.
#pragma once

#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace speccc::serve {

enum class Method { kCheck, kPing, kStats, kShutdown };

/// One decoded request line.
struct ParsedRequest {
  Method method = Method::kPing;
  std::string id;    ///< correlation token (echoed); may be empty
  Request request;   ///< populated for kCheck
};

/// Decode one NDJSON request line. Throws util::ParseError with a
/// human-readable reason on malformed input (bad JSON, unknown method,
/// missing/mistyped fields); the caller turns that into an "error"
/// response.
[[nodiscard]] ParsedRequest parse_request(std::string_view line);

/// Render a service response as one JSON line (no trailing newline).
[[nodiscard]] std::string render_response(const Response& response);

/// Render an "error" response for a line that failed to parse.
[[nodiscard]] std::string render_error(std::string_view id,
                                       std::string_view message);

[[nodiscard]] std::string render_pong(std::string_view id);

/// Service counters plus, when `store` is non-null, whole-process cache
/// counters.
[[nodiscard]] std::string render_stats(std::string_view id,
                                       const ServiceStats& stats,
                                       const cache::Store* store);

/// Acknowledgement sent for a "shutdown" request before draining begins.
[[nodiscard]] std::string render_shutting_down(std::string_view id);

}  // namespace speccc::serve
