#include "partition/partition.hpp"

#include "util/diagnostics.hpp"

namespace speccc::partition {

namespace {

using ltl::Formula;
using ltl::Op;

/// Walk the formula; `input_side` is true inside implication antecedents and
/// Until right-hand sides.
void walk(Formula f, bool input_side, Votes& votes) {
  switch (f.op()) {
    case Op::kAp:
      (input_side ? votes.inputs : votes.outputs).insert(f.ap_name());
      return;
    case Op::kImplies:
      walk(f.child(0), true, votes);
      walk(f.child(1), input_side, votes);
      return;
    case Op::kUntil:
    case Op::kWeakUntil:
      // "for right-hand parts of the Until operator ... input variables".
      walk(f.child(0), input_side, votes);
      walk(f.child(1), true, votes);
      return;
    case Op::kRelease:
      walk(f.child(0), true, votes);
      walk(f.child(1), input_side, votes);
      return;
    default:
      for (Formula c : f.children()) walk(c, input_side, votes);
      return;
  }
}

}  // namespace

Votes classify(Formula requirement) {
  Votes raw;
  walk(requirement, /*input_side=*/false, raw);
  // Within one requirement: both sides => output.
  Votes out;
  out.outputs = raw.outputs;
  for (const auto& name : raw.inputs) {
    if (raw.outputs.count(name) == 0) out.inputs.insert(name);
  }
  return out;
}

Partition unify(const std::vector<Formula>& requirements,
                const Overrides& overrides) {
  Partition partition;
  for (Formula f : requirements) {
    const Votes votes = classify(f);
    for (const auto& name : votes.inputs) partition.inputs.insert(name);
    for (const auto& name : votes.outputs) partition.outputs.insert(name);
  }
  // Cross-requirement conflicts become outputs.
  for (auto it = partition.inputs.begin(); it != partition.inputs.end();) {
    if (partition.outputs.count(*it) > 0) {
      it = partition.inputs.erase(it);
    } else {
      ++it;
    }
  }
  // User overrides win.
  for (const auto& [name, is_input] : overrides.forced) {
    partition.inputs.erase(name);
    partition.outputs.erase(name);
    (is_input ? partition.inputs : partition.outputs).insert(name);
  }
  // No input at all: promote the smallest output (paper: random choice).
  if (partition.inputs.empty() && !partition.outputs.empty()) {
    const std::string promoted = *partition.outputs.begin();
    partition.outputs.erase(partition.outputs.begin());
    partition.inputs.insert(promoted);
  }
  return partition;
}

}  // namespace speccc::partition
