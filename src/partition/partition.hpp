// Input/output variable partition heuristics (paper Section IV-F).
//
// Per requirement: propositions in the left-hand side of an implication or
// the right-hand side of an Until/WeakUntil are input candidates; all other
// propositions are output candidates; a proposition appearing on both sides
// within one requirement becomes an output.
//
// Across requirements the per-requirement votes are unified; any conflict
// (input in one requirement, output in another) resolves to output. If no
// input remains, one output is promoted to input -- the paper picks
// randomly, we pick the lexicographically smallest for reproducibility.
// User overrides (paper: "the translator also asks the user") are applied
// last and win unconditionally.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ltl/formula.hpp"

namespace speccc::partition {

struct Partition {
  std::set<std::string> inputs;
  std::set<std::string> outputs;

  [[nodiscard]] bool is_input(const std::string& name) const {
    return inputs.count(name) > 0;
  }
};

/// Per-requirement classification votes.
struct Votes {
  std::set<std::string> inputs;
  std::set<std::string> outputs;
};

/// Classify one requirement formula.
[[nodiscard]] Votes classify(ltl::Formula requirement);

struct Overrides {
  /// proposition -> true for input, false for output.
  std::map<std::string, bool> forced;
};

/// Unify the votes of all requirements into a single partition.
[[nodiscard]] Partition unify(const std::vector<ltl::Formula>& requirements,
                              const Overrides& overrides = {});

}  // namespace speccc::partition
