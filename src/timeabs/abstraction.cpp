#include "timeabs/abstraction.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "smt/bitblast.hpp"

namespace speccc::timeabs {

namespace {

void validate(const Request& request) {
  if (request.thetas.empty()) {
    throw util::InvalidInputError("time abstraction requires at least one theta");
  }
  for (std::uint32_t theta : request.thetas) {
    if (theta == 0) {
      throw util::InvalidInputError("Next-chain lengths must be >= 1");
    }
  }
  if (!request.signs.empty() && request.signs.size() != request.thetas.size()) {
    throw util::InvalidInputError("signs must be empty or match thetas in size");
  }
}

ErrorSign sign_of(const Request& request, std::size_t i) {
  return request.signs.empty() ? ErrorSign::kEarly : request.signs[i];
}

/// The unique decomposition of theta for divisor d with Delta >= 0:
/// theta' = floor(theta/d), delta = theta mod d.
struct Option {
  std::uint32_t reduced;
  std::uint32_t abs_error;
  bool early;
};

Option early_option(std::uint32_t theta, std::uint32_t d) {
  return {theta / d, theta % d, true};
}

/// Decomposition with Delta <= 0: theta' = ceil(theta/d), delta = theta'*d -
/// theta; only valid when delta < d (always true unless theta % d == 0, in
/// which case it degenerates to the exact decomposition).
Option late_option(std::uint32_t theta, std::uint32_t d) {
  const std::uint32_t q = (theta + d - 1) / d;
  return {q, q * d - theta, false};
}

}  // namespace

Abstraction gcd_abstraction(const std::vector<std::uint32_t>& thetas) {
  if (thetas.empty()) {
    throw util::InvalidInputError("time abstraction requires at least one theta");
  }
  std::uint32_t g = 0;
  for (std::uint32_t theta : thetas) {
    if (theta == 0) {
      throw util::InvalidInputError("Next-chain lengths must be >= 1");
    }
    g = std::gcd(g, theta);
  }
  Abstraction out;
  out.divisor = g;
  out.errors.assign(thetas.size(), 0);
  out.error_sum = 0;
  for (std::uint32_t theta : thetas) {
    out.reduced.push_back(theta / g);
    out.reduced_sum += theta / g;
  }
  return out;
}

namespace {

/// For a fixed divisor, pick per-theta options to lexicographically minimize
/// (sum theta', sum delta) subject to sum delta <= budget. With fixed signs
/// the options are forced; with kEither this is a tiny knapsack solved by
/// dynamic programming over the budget.
std::optional<Abstraction> solve_for_divisor(const Request& request,
                                             std::uint32_t d) {
  const std::size_t n = request.thetas.size();
  const std::uint64_t budget = request.error_budget;

  // Collect per-theta candidate options.
  std::vector<std::vector<Option>> options(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t theta = request.thetas[i];
    const ErrorSign sign = sign_of(request, i);
    if (sign == ErrorSign::kEarly || sign == ErrorSign::kEither) {
      options[i].push_back(early_option(theta, d));
    }
    if (sign == ErrorSign::kLate || sign == ErrorSign::kEither) {
      const Option late = late_option(theta, d);
      // Skip the duplicate when theta divides exactly.
      if (options[i].empty() || late.abs_error != options[i].front().abs_error ||
          late.reduced != options[i].front().reduced) {
        options[i].push_back(late);
      }
    }
  }

  // DP over budget: best[b] = lexicographically minimal (sum theta',
  // sum delta, choice trace) using error budget exactly <= b.
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  struct Cell {
    std::uint64_t reduced_sum = kInf;
    std::uint64_t error_sum = kInf;
    std::vector<std::uint8_t> choice;
  };
  std::vector<Cell> best(static_cast<std::size_t>(budget) + 1);
  best[0] = {0, 0, {}};

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<Cell> next(budget + 1);
    for (std::size_t b = 0; b <= budget; ++b) {
      const Cell& cur = best[b];
      if (cur.reduced_sum == kInf) continue;
      for (std::size_t k = 0; k < options[i].size(); ++k) {
        const Option& opt = options[i][k];
        const std::uint64_t nb = b + opt.abs_error;
        if (nb > budget) continue;
        Cell cand;
        cand.reduced_sum = cur.reduced_sum + opt.reduced;
        cand.error_sum = cur.error_sum + opt.abs_error;
        Cell& slot = next[nb];
        const bool better =
            slot.reduced_sum == kInf || cand.reduced_sum < slot.reduced_sum ||
            (cand.reduced_sum == slot.reduced_sum &&
             cand.error_sum < slot.error_sum);
        if (better) {
          cand.choice = cur.choice;
          cand.choice.push_back(static_cast<std::uint8_t>(k));
          slot = std::move(cand);
        }
      }
    }
    best = std::move(next);
  }

  // Pick the best cell across budgets.
  const Cell* winner = nullptr;
  for (std::size_t b = 0; b <= budget; ++b) {
    const Cell& cell = best[b];
    if (cell.reduced_sum == kInf) continue;
    const bool better =
        winner == nullptr || cell.reduced_sum < winner->reduced_sum ||
        (cell.reduced_sum == winner->reduced_sum &&
         cell.error_sum < winner->error_sum);
    if (better) winner = &cell;
  }
  if (winner == nullptr) return std::nullopt;

  Abstraction out;
  out.divisor = d;
  out.reduced_sum = winner->reduced_sum;
  out.error_sum = winner->error_sum;
  for (std::size_t i = 0; i < n; ++i) {
    const Option& opt = options[i][winner->choice[i]];
    out.reduced.push_back(opt.reduced);
    out.errors.push_back(opt.early ? static_cast<std::int64_t>(opt.abs_error)
                                   : -static_cast<std::int64_t>(opt.abs_error));
  }
  return out;
}

std::optional<Abstraction> optimize_enumeration(const Request& request) {
  const std::uint32_t max_theta =
      *std::max_element(request.thetas.begin(), request.thetas.end());
  std::optional<Abstraction> best;
  // d beyond max_theta only increases errors (every theta collapses to
  // theta'=0 already at d = max_theta+1 if the budget allows; larger d
  // changes nothing), so the scan is bounded by max_theta + 1.
  for (std::uint32_t d = 1; d <= max_theta + 1; ++d) {
    auto candidate = solve_for_divisor(request, d);
    if (!candidate) continue;
    const bool better =
        !best || candidate->reduced_sum < best->reduced_sum ||
        (candidate->reduced_sum == best->reduced_sum &&
         candidate->error_sum < best->error_sum);
    if (better) best = std::move(candidate);
  }
  return best;
}

std::size_t bit_width(std::uint64_t value) {
  std::size_t w = 1;
  while ((value >> w) != 0) ++w;
  return w;
}

std::optional<Abstraction> optimize_smt(const Request& request,
                                        SmtEncoder encoder) {
  const std::size_t n = request.thetas.size();
  const std::uint32_t max_theta =
      *std::max_element(request.thetas.begin(), request.thetas.end());
  const std::size_t w = bit_width(max_theta) + 1;

  sat::Solver solver;
  smt::BuilderOptions builder_options;
  builder_options.cnf.encoder = encoder == SmtEncoder::kTseitin
                                    ? aig::CnfOptions::Encoder::kTseitin
                                    : aig::CnfOptions::Encoder::kCutMap;
  smt::Builder builder(solver, builder_options);

  const smt::BitVec d = builder.var(w);
  builder.require(builder.ule(builder.constant(1, w), d));

  std::vector<smt::BitVec> reduced;
  std::vector<smt::BitVec> deltas;
  std::vector<smt::Bit> early_sel;  // only meaningful for kEither

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t theta = request.thetas[i];
    const smt::BitVec theta_c = builder.constant(theta, w);
    const smt::BitVec ri = builder.var(w);
    const smt::BitVec di = builder.var(w);
    builder.require(builder.ult(di, d));  // |Delta| < d
    const smt::BitVec prod = builder.mul(ri, d);

    const smt::Bit early_eq = builder.eq(theta_c, builder.add(prod, di));
    const smt::Bit late_eq = builder.eq(builder.add(theta_c, di), prod);

    const ErrorSign sign = sign_of(request, i);
    smt::Bit sel = smt::Builder::bit_true();
    switch (sign) {
      case ErrorSign::kEarly:
        builder.require(early_eq);
        break;
      case ErrorSign::kLate:
        builder.require(late_eq);
        break;
      case ErrorSign::kEither:
        sel = builder.fresh();
        builder.require(builder.lor(builder.land(sel, early_eq),
                                    builder.land(sel.negated(), late_eq)));
        break;
    }
    early_sel.push_back(sel);
    reduced.push_back(ri);
    deltas.push_back(di);
  }

  // sum |Delta_i| <= B.
  smt::BitVec error_sum = builder.constant(0, 1);
  for (const auto& di : deltas) error_sum = builder.add(error_sum, di);
  builder.require(builder.ule_const(error_sum, request.error_budget));

  smt::BitVec reduced_sum = builder.constant(0, 1);
  for (const auto& ri : reduced) reduced_sum = builder.add(reduced_sum, ri);

  // Primary objective.
  const auto min_reduced = builder.minimize(reduced_sum);
  if (!min_reduced) return std::nullopt;
  builder.require(
      builder.eq(reduced_sum, builder.constant(*min_reduced, reduced_sum.width())));

  // Secondary objective.
  const auto min_error = builder.minimize(error_sum);
  speccc_check(min_error.has_value(), "secondary objective must stay feasible");
  builder.require(
      builder.eq(error_sum, builder.constant(*min_error, error_sum.width())));

  // Tertiary objective: minimize the divisor itself. The enumeration
  // backend scans d ascending and keeps the first optimum, so pinning the
  // smallest optimal d makes the two backends -- and both CNF encoders --
  // agree on the full abstraction, not just the objective pair (the
  // Table I byte-identity smoke relies on this).
  const auto min_d = builder.minimize(d);
  speccc_check(min_d.has_value(), "tertiary objective must stay feasible");

  Abstraction out;
  out.divisor = static_cast<std::uint32_t>(builder.model_value(d));
  out.reduced_sum = *min_reduced;
  out.error_sum = *min_error;
  for (std::size_t i = 0; i < n; ++i) {
    out.reduced.push_back(
        static_cast<std::uint32_t>(builder.model_value(reduced[i])));
    const auto delta =
        static_cast<std::int64_t>(builder.model_value(deltas[i]));
    const ErrorSign sign = sign_of(request, i);
    bool early = sign != ErrorSign::kLate;
    if (sign == ErrorSign::kEither) {
      early = builder.value(early_sel[i]);
    }
    out.errors.push_back(early ? delta : -delta);
  }
  return out;
}

}  // namespace

std::optional<Abstraction> optimize(const Request& request, Backend backend,
                                    SmtEncoder encoder) {
  validate(request);
  return backend == Backend::kEnumeration ? optimize_enumeration(request)
                                          : optimize_smt(request, encoder);
}

Abstraction optimize_exact(const Request& request) {
  auto result = optimize(request, Backend::kEnumeration);
  speccc_check(result.has_value(),
               "enumeration backend always finds d=1 with zero error");
  return *result;
}

}  // namespace speccc::timeabs
