// Time counting and abstraction (paper Section IV-E).
//
// Requirements with timing constraints ("... in 3 seconds") translate to
// chains of Next operators; long chains blow up synthesis. This module
// rewrites the chain lengths Theta = {theta_0..theta_n}:
//
//   * gcd_abstraction: divide every theta by gcd(Theta) -- sound (exactly
//     realizability-preserving) but conservative.
//   * optimize: the paper's constraint system (1)-(2),
//         theta_i = theta'_i * d + Delta_i,   -d < Delta_i < d,
//     with a per-requirement arrival-error sign (early: Delta >= 0, late:
//     Delta <= 0, or either), a user bound B on sum |Delta_i|, primary
//     objective min sum theta'_i and secondary objective min sum |Delta_i|.
//
// Two interchangeable back-ends solve the optimization:
//   * kEnumeration -- exact reference: enumerate the divisor d; for fixed d
//     and sign the decomposition is unique, and the "either" sign becomes a
//     small lexicographic knapsack over the error budget.
//   * kSmt -- the paper's route: bit-blasting to SAT (our Yices 2 stand-in)
//     with a descending bound search per objective.
// Property tests assert both back-ends agree on (sum theta', sum |Delta|).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/diagnostics.hpp"

namespace speccc::timeabs {

enum class ErrorSign {
  kEarly,   // Delta_i >= 0: the event may arrive earlier after rewriting
  kLate,    // Delta_i <= 0: the event may arrive later
  kEither,  // solver chooses (still one-sided per requirement)
};

enum class Backend { kEnumeration, kSmt };

/// CNF encoder for the kSmt backend: cut-based AIG mapping (the default)
/// or the seed per-gate Tseitin lane. Both must produce identical
/// abstractions -- the check.sh smoke diffs Table I across encoders.
enum class SmtEncoder { kCutMap, kTseitin };

struct Request {
  /// Distinct Next-chain lengths, all >= 1.
  std::vector<std::uint32_t> thetas;
  /// Upper bound B on the summed absolute errors.
  std::uint32_t error_budget = 0;
  /// Per-theta sign restriction; empty means kEarly for all (the paper's
  /// running example).
  std::vector<ErrorSign> signs;
};

struct Abstraction {
  std::uint32_t divisor = 1;           // d
  std::vector<std::uint32_t> reduced;  // theta'_i
  std::vector<std::int64_t> errors;    // Delta_i (signed)
  std::uint64_t reduced_sum = 0;       // sum theta'_i (primary objective)
  std::uint64_t error_sum = 0;         // sum |Delta_i| (secondary objective)
};

/// GCD reduction: divisor = gcd(Theta), all errors zero. Requires a
/// non-empty theta list.
[[nodiscard]] Abstraction gcd_abstraction(const std::vector<std::uint32_t>& thetas);

/// Solve the optimization problem. Returns nullopt iff no divisor admits the
/// error budget (this cannot happen: d = 1 always yields zero error, so a
/// nullopt signals an invalid request such as an empty theta list handled by
/// throwing InvalidInputError instead).
[[nodiscard]] std::optional<Abstraction> optimize(
    const Request& request, Backend backend,
    SmtEncoder encoder = SmtEncoder::kCutMap);

/// Convenience: optimal abstraction with the enumeration backend.
[[nodiscard]] Abstraction optimize_exact(const Request& request);

}  // namespace speccc::timeabs
