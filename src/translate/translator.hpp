// Natural language to LTL translation (paper Section IV).
//
// Pipeline per requirement sentence:
//   1. parse with the structured-English grammar (nlp::parse_sentence);
//   2. extract atomic propositions in predicate_subject form, applying the
//      semantic-reasoning reductions of Section IV-D (available_pulse_wave
//      becomes pulse_wave, unavailable becomes a negation, ...);
//   3. instantiate the pattern templates of Section IV-C: conditional
//      subclauses become implications under G, "eventually"/future tense
//      becomes F, "until" becomes the weak-until template, "in t seconds"
//      becomes a chain of X operators.
//
// Timing constraints are harvested so the Section IV-E abstraction can remap
// tick counts; translate() accepts a tick mapper for the re-encoding pass.
//
// The "next" subordinator: the grammar maps it to X, but the paper's own
// appendix drops it from every generated formula (Req-13.1, Req-20, Req-44,
// Req-48.4, ...). NextMode selects between the strict reading (kStrict, X)
// and appendix fidelity (kPaperAppendix, dropped); the default follows the
// appendix so the golden corpus matches the published formulas.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ltl/formula.hpp"
#include "nlp/lexicon.hpp"
#include "nlp/syntax.hpp"
#include "semantics/antonyms.hpp"
#include "semantics/reasoning.hpp"
#include "util/digest.hpp"

namespace speccc::cache {
class Store;
}  // namespace speccc::cache

namespace speccc::translate {

enum class NextMode { kStrict, kPaperAppendix };

struct Options {
  NextMode next_mode = NextMode::kPaperAppendix;
  /// Apply Section IV-D semantic reasoning / proposition reduction.
  bool semantic_reasoning = true;
  /// Seconds per discrete tick before abstraction (paper: 1 second per X).
  unsigned seconds_per_tick = 1;
};

/// Maps a duration in ticks to the (possibly abstracted) number of X
/// operators. Identity when no abstraction has run.
using TickMapper = std::function<unsigned(unsigned)>;

struct RequirementText {
  std::string id;    // "Req-08"
  std::string text;  // the sentence
};

struct TranslatedRequirement {
  std::string id;
  std::string text;
  nlp::Sentence sentence;
  ltl::Formula formula;
  /// Tick counts of the timing constraints in this requirement (pre-mapping
  /// values, in ticks).
  std::vector<unsigned> delays;
};

struct TranslationResult {
  std::vector<TranslatedRequirement> requirements;
  semantics::ReasoningResult reasoning;
  std::set<std::string> propositions;

  [[nodiscard]] std::vector<ltl::Formula> formulas() const;
  /// All distinct positive delay tick counts (the Theta set of Section IV-E).
  [[nodiscard]] std::vector<std::uint32_t> thetas() const;
};

class Translator {
 public:
  /// `cache` (optional, caller-owned, must outlive the translator) memoizes
  /// sentence parses across translate() calls — the level-1 cache of
  /// cache/store.hpp, keyed by normalized sentence text plus this lexicon's
  /// fingerprint, so building a translator over an edited vocabulary
  /// invalidates by changing the key. The referenced lexicon must not be
  /// mutated while this translator is in use (already required for parse
  /// coherence; with a cache, the fingerprint is snapshotted here, so a
  /// later mutation would also serve parses under the stale key — make a
  /// new Translator per vocabulary instead, as core::Pipeline does).
  /// Parsing is a pure function of (text, lexicon): results are identical
  /// with or without a cache, only faster.
  Translator(const nlp::Lexicon& lexicon,
             const semantics::AntonymDictionary& dictionary,
             Options options = {}, cache::Store* cache = nullptr);

  /// Translate a specification. The optional tick mapper re-encodes timing
  /// constraints (Section IV-E second pass).
  [[nodiscard]] TranslationResult translate(
      const std::vector<RequirementText>& requirements,
      const TickMapper& tick_mapper = nullptr) const;

  /// Translate a single sentence with a prebuilt reducer (nullptr disables
  /// reduction). Exposed for tests and the Fig. 2 example binary.
  [[nodiscard]] ltl::Formula translate_sentence(
      const nlp::Sentence& sentence, const semantics::PropositionReducer* reducer,
      const TickMapper& tick_mapper = nullptr) const;

 private:
  [[nodiscard]] nlp::Sentence parse_cached(const std::string& text) const;

  const nlp::Lexicon& lexicon_;
  const semantics::AntonymDictionary& dictionary_;
  Options options_;
  cache::Store* cache_ = nullptr;
  util::Digest lexicon_fingerprint_;  // computed once iff cache_ is set
};

}  // namespace speccc::translate
