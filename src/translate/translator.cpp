#include "translate/translator.hpp"

#include <algorithm>

#include "cache/store.hpp"
#include "util/diagnostics.hpp"
#include "util/strings.hpp"

namespace speccc::translate {

namespace {

using ltl::Formula;
using nlp::Clause;
using nlp::ClauseGroup;
using nlp::NounPhrase;
using nlp::Predicate;
using nlp::PredicateKind;
using semantics::PropositionReducer;
using semantics::Reduction;

/// Builds the proposition (possibly negated) for one subject of a clause.
struct Literal {
  Formula formula;
};

class ClauseTranslator {
 public:
  ClauseTranslator(const Options& options, const PropositionReducer* reducer,
                   const TickMapper& tick_mapper, const std::string& pronoun_referent)
      : options_(options),
        reducer_(reducer),
        tick_mapper_(tick_mapper),
        pronoun_referent_(pronoun_referent) {}

  Formula run(const Clause& clause, std::vector<unsigned>* delays) const {
    // One literal per subject, combined with the subject conjunction.
    std::vector<Formula> parts;
    for (const NounPhrase& np : clause.subjects) {
      parts.push_back(subject_literal(clause, np));
    }
    Formula body = clause.subject_conjunction == "or" ? ltl::lor(parts)
                                                       : ltl::land(parts);

    // Future tense / "eventually" modifier: F. A timing constraint
    // overrides the open-ended future with a concrete deadline.
    const bool timed = clause.constraint.has_value();
    if (!timed &&
        (clause.predicate.future || clause.modifier == "eventually" ||
         clause.modifier == "sometimes")) {
      body = ltl::eventually(body);
    }
    if (timed) {
      unsigned ticks = clause.constraint->total_seconds() / options_.seconds_per_tick;
      if (delays != nullptr && ticks > 0) delays->push_back(ticks);
      if (tick_mapper_ != nullptr) ticks = tick_mapper_(ticks);
      body = ltl::next_n(body, ticks);
    }
    if (clause.next_marked && options_.next_mode == NextMode::kStrict) {
      body = ltl::next(body);
    }
    return body;
  }

 private:
  /// Proposition naming: predicate_subject for verbal predicates,
  /// complement_subject for unreduced copular complements, subject alone for
  /// reduced ones, subject_prep_object for prepositional predicates.
  Formula subject_literal(const Clause& clause, const NounPhrase& np) const {
    const Predicate& pred = clause.predicate;
    bool negated = pred.negated;

    // Resolve the subject name, folding reduced noun-phrase adjectives.
    std::vector<std::string> name_words;
    if (np.pronoun) {
      speccc_check(!pronoun_referent_.empty(),
                   "pronoun subject with no referent in scope");
      name_words.push_back(pronoun_referent_);
    } else {
      for (const nlp::NpWord& w : np.words) {
        if (w.pos == nlp::Pos::kAdjective && !w.capitalized &&
            reducer_ != nullptr) {
          const Reduction r = reducer_->decide("", w.text);
          if (r.fold) {
            if (r.negate) negated = !negated;
            continue;
          }
        }
        name_words.push_back(w.text);
      }
    }
    speccc_check(!name_words.empty(), "empty subject after reduction");
    const std::string subject = util::join(name_words, "_");

    Formula prop;
    switch (pred.kind) {
      case PredicateKind::kCopula: {
        // Complements: reduced ones fold into the sign; unreduced ones name
        // the proposition complement_subject (low_air_ok_signal).
        std::vector<Formula> conj;
        bool folded_only = true;
        for (const std::string& c : pred.complements) {
          if (reducer_ != nullptr) {
            const Reduction r = reducer_->decide(subject, c);
            if (r.fold) {
              if (r.negate) negated = !negated;
              continue;
            }
          }
          folded_only = false;
          conj.push_back(ltl::ap(c + "_" + subject));
        }
        if (folded_only) {
          prop = ltl::ap(subject);
        } else {
          prop = ltl::land(conj);
        }
        break;
      }
      case PredicateKind::kPassive:
      case PredicateKind::kProgressive:
        prop = ltl::ap(pred.verb_lemma + "_" + subject);
        break;
      case PredicateKind::kActive:
        if (!pred.objects.empty()) {
          prop = ltl::ap(pred.verb_lemma + "_" + pred.objects.front().joined());
        } else {
          prop = ltl::ap(pred.verb_lemma + "_" + subject);
        }
        break;
      case PredicateKind::kPreposition: {
        // Coordinated objects fold into a disjunction/conjunction of
        // subject_prep_object propositions ("is in room 1 or room 2").
        std::vector<Formula> props;
        for (const NounPhrase& object : pred.objects) {
          props.push_back(ltl::ap(subject + "_" + pred.preposition + "_" +
                                  object.joined()));
        }
        prop = pred.object_conjunction == "and" ? ltl::land(props)
                                                : ltl::lor(props);
        break;
      }
    }
    return negated ? ltl::lnot(prop) : prop;
  }

  const Options& options_;
  const PropositionReducer* reducer_;
  const TickMapper& tick_mapper_;
  const std::string& pronoun_referent_;
};

}  // namespace

Translator::Translator(const nlp::Lexicon& lexicon,
                       const semantics::AntonymDictionary& dictionary,
                       Options options, cache::Store* cache)
    : lexicon_(lexicon),
      dictionary_(dictionary),
      options_(options),
      cache_(cache) {
  if (cache_ != nullptr) lexicon_fingerprint_ = lexicon_.fingerprint();
}

nlp::Sentence Translator::parse_cached(const std::string& text) const {
  if (cache_ == nullptr) return nlp::parse_sentence(text, lexicon_);
  const util::Digest key =
      cache::sentence_key(cache::normalize_sentence(text), lexicon_fingerprint_);
  if (auto hit = cache_->find_sentence(key)) {
    // The cached parse may originate from a whitespace variant of this
    // sentence; restore the verbatim text so diagnostics print it as
    // written here.
    hit->text = text;
    return *std::move(hit);
  }
  nlp::Sentence sentence = nlp::parse_sentence(text, lexicon_);
  cache_->put_sentence(key, sentence);
  return sentence;
}

namespace {

/// Fold a clause group into one formula using the inter-clause connectives.
Formula group_formula(const ClauseGroup& group, const ClauseTranslator& ct,
                      std::vector<unsigned>* delays) {
  speccc_check(!group.clauses.empty(), "empty clause group");
  Formula acc = ct.run(group.clauses.front().second, delays);
  for (std::size_t i = 1; i < group.clauses.size(); ++i) {
    const auto& [conn, clause] = group.clauses[i];
    const Formula f = ct.run(clause, delays);
    acc = conn == "or" ? ltl::lor(acc, f) : ltl::land(acc, f);
  }
  return acc;
}

/// The name of the first subject of the main clause (after reduction), used
/// as the referent of "it" in trailing subclauses.
std::string main_referent(const nlp::Sentence& sentence,
                          const PropositionReducer* reducer) {
  if (sentence.main.clauses.empty()) return "";
  const Clause& clause = sentence.main.clauses.front().second;
  if (clause.subjects.empty() || clause.subjects.front().pronoun) return "";
  std::vector<std::string> words;
  for (const nlp::NpWord& w : clause.subjects.front().words) {
    if (w.pos == nlp::Pos::kAdjective && !w.capitalized && reducer != nullptr &&
        reducer->decide("", w.text).fold) {
      continue;
    }
    words.push_back(w.text);
  }
  return util::join(words, "_");
}

}  // namespace

ltl::Formula Translator::translate_sentence(const nlp::Sentence& sentence,
                                            const PropositionReducer* reducer,
                                            const TickMapper& tick_mapper) const {
  return [&]() -> Formula {
    const std::string referent = main_referent(sentence, reducer);
    const ClauseTranslator ct(options_, reducer, tick_mapper, referent);
    std::vector<unsigned> sink;

    Formula main = group_formula(sentence.main, ct, &sink);

    // Trailing until-subclause: the paper's template (Req-49),
    //   main until q  ==>  (!q -> (main W q)).
    if (sentence.until.has_value()) {
      const Formula q = group_formula(*sentence.until, ct, &sink);
      main = ltl::implies(ltl::lnot(q), ltl::weak_until(main, q));
    }

    // Conditional subclauses nest right-to-left: the first group is the
    // outermost antecedent (Req-17.4).
    Formula body = main;
    for (auto it = sentence.conditions.rbegin(); it != sentence.conditions.rend();
         ++it) {
      body = ltl::implies(group_formula(*it, ct, &sink), body);
    }

    // Universality wrapper; a bare existential main clause stays F-only
    // (the Existence pattern).
    if (sentence.conditions.empty() && !sentence.until.has_value() &&
        body.op() == ltl::Op::kEventually) {
      return body;
    }
    return ltl::always(body);
  }();
}

TranslationResult Translator::translate(
    const std::vector<RequirementText>& requirements,
    const TickMapper& tick_mapper) const {
  TranslationResult result;

  // Phase 1: parse everything (Algorithm 1 needs the whole specification).
  // With a cache, revisions and re-translation passes (time abstraction
  // calls translate() twice) skip re-parsing unchanged sentences.
  std::vector<nlp::Sentence> sentences;
  for (const RequirementText& req : requirements) {
    sentences.push_back(parse_cached(req.text));
  }

  // Phase 2: semantic reasoning over the whole specification.
  std::optional<PropositionReducer> reducer;
  if (options_.semantic_reasoning) {
    result.reasoning = semantics::reason(sentences, dictionary_);
    reducer.emplace(result.reasoning, dictionary_);
  }

  // Phase 3: per-sentence translation.
  for (std::size_t i = 0; i < requirements.size(); ++i) {
    TranslatedRequirement tr;
    tr.id = requirements[i].id;
    tr.text = requirements[i].text;
    tr.sentence = sentences[i];

    const std::string referent =
        main_referent(sentences[i], reducer ? &*reducer : nullptr);
    const ClauseTranslator ct(options_, reducer ? &*reducer : nullptr,
                              tick_mapper, referent);
    // Re-run the sentence translation but harvesting delays.
    Formula main = group_formula(sentences[i].main, ct, &tr.delays);
    if (sentences[i].until.has_value()) {
      const Formula q = group_formula(*sentences[i].until, ct, &tr.delays);
      main = ltl::implies(ltl::lnot(q), ltl::weak_until(main, q));
    }
    Formula body = main;
    for (auto it = sentences[i].conditions.rbegin();
         it != sentences[i].conditions.rend(); ++it) {
      body = ltl::implies(group_formula(*it, ct, &tr.delays), body);
    }
    if (sentences[i].conditions.empty() && !sentences[i].until.has_value() &&
        body.op() == ltl::Op::kEventually) {
      tr.formula = body;
    } else {
      tr.formula = ltl::always(body);
    }

    const auto atoms = tr.formula.atoms();
    result.propositions.insert(atoms.begin(), atoms.end());
    result.requirements.push_back(std::move(tr));
  }
  return result;
}

std::vector<ltl::Formula> TranslationResult::formulas() const {
  std::vector<ltl::Formula> out;
  out.reserve(requirements.size());
  for (const auto& r : requirements) out.push_back(r.formula);
  return out;
}

std::vector<std::uint32_t> TranslationResult::thetas() const {
  std::set<std::uint32_t> set;
  for (const auto& r : requirements) {
    for (unsigned d : r.delays) {
      if (d > 0) set.insert(d);
    }
  }
  return {set.begin(), set.end()};
}

}  // namespace speccc::translate
