// Heuristic refinement (paper Section V-B): when synthesis reports the
// specification unrealizable, (1) locate a minimal inconsistent requirement
// core, (2) filter the requirements sharing propositions with it, and
// (3) try adjusting the input/output partition of the implicated variables;
// only if no adjustment helps is the specification declared genuinely
// inconsistent (the requirements themselves must change) -- and then the
// diag engine enumerates minimal correction sets, the alternative sentence
// removals that would restore consistency.
//
// Localization runs on the diag MUS engine by default (deletion-based
// shrinking with core jumps); the original incremental-growth + greedy
// shrink path survives behind LocalizeOptions::Method::kGreedy as the
// difftest cross-check reference.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ltl/formula.hpp"
#include "partition/partition.hpp"
#include "synth/synthesizer.hpp"

namespace speccc::refine {

struct LocalizeOptions {
  enum class Method {
    kCores,   // diag::shrink_mus deletion over requirement selectors
    kGreedy,  // legacy incremental growth + greedy shrink (cross-check path)
  };
  Method method = Method::kCores;
  /// Minimal correction sets to enumerate for genuinely inconsistent
  /// specifications (0 disables the diag MaxSAT loop). localize() honors
  /// this directly; refine() defers it until partition adjustment has
  /// failed, so consistent-after-refinement specs never pay for it.
  std::size_t max_correction_sets = 0;
};

struct Localization {
  /// Indices of a minimal inconsistent requirement subset (MUS).
  std::vector<std::size_t> core;
  /// Minimal correction sets (diag::correction_sets order: smallest
  /// first): removing any one restores consistency. Empty unless
  /// LocalizeOptions::max_correction_sets asked for them.
  std::vector<std::vector<std::size_t>> correction_sets;
  /// Indices of requirements sharing propositions with the core (the
  /// paper's filtering step) -- includes the core itself.
  std::vector<std::size_t> related;
  /// Number of realizability checks performed.
  std::size_t checks = 0;
};

/// Locate a minimal inconsistent core (paper V-B bullet 1), by the diag
/// MUS engine or the legacy greedy path. Precondition: the full
/// conjunction is unrealizable under `signature`.
[[nodiscard]] Localization localize(const std::vector<ltl::Formula>& requirements,
                                    const synth::IoSignature& signature,
                                    const synth::SynthesisOptions& options = {},
                                    const LocalizeOptions& localize_options = {});

struct Adjustment {
  std::string variable;
  bool now_input = false;  // direction of the flip
};

struct RefinementOutcome {
  bool consistent = false;  // true if an adjustment restored realizability
  std::optional<Adjustment> adjustment;
  partition::Partition partition;  // final partition (adjusted or original)
  Localization localization;
  std::size_t checks = 0;  // total realizability checks
};

/// The full stage-3 loop: localize, then try single-variable partition flips
/// on the core/related propositions (paper V-B bullet 2). Candidates are
/// ranked by how often they occur in the core and related requirements.
/// When no flip helps and max_correction_sets > 0, the outcome's
/// localization additionally carries the minimal correction sets.
[[nodiscard]] RefinementOutcome refine(const std::vector<ltl::Formula>& requirements,
                                       const partition::Partition& initial,
                                       const synth::SynthesisOptions& options = {},
                                       const LocalizeOptions& localize_options = {});

}  // namespace speccc::refine
