// Heuristic refinement (paper Section V-B): when synthesis reports the
// specification unrealizable, (1) locate a minimal inconsistent requirement
// core, (2) filter the requirements sharing propositions with it, and
// (3) try adjusting the input/output partition of the implicated variables;
// only if no adjustment helps is the specification declared genuinely
// inconsistent (the requirements themselves must change).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ltl/formula.hpp"
#include "partition/partition.hpp"
#include "synth/synthesizer.hpp"

namespace speccc::refine {

struct Localization {
  /// Indices of a minimal inconsistent requirement subset.
  std::vector<std::size_t> core;
  /// Indices of requirements sharing propositions with the core (the
  /// paper's filtering step) -- includes the core itself.
  std::vector<std::size_t> related;
  /// Number of realizability checks performed.
  std::size_t checks = 0;
};

/// Locate a minimal inconsistent core by incremental subset growth followed
/// by greedy shrinking (paper V-B bullet 1). Precondition: the full
/// conjunction is unrealizable under `signature`.
[[nodiscard]] Localization localize(const std::vector<ltl::Formula>& requirements,
                                    const synth::IoSignature& signature,
                                    const synth::SynthesisOptions& options = {});

struct Adjustment {
  std::string variable;
  bool now_input = false;  // direction of the flip
};

struct RefinementOutcome {
  bool consistent = false;  // true if an adjustment restored realizability
  std::optional<Adjustment> adjustment;
  partition::Partition partition;  // final partition (adjusted or original)
  Localization localization;
  std::size_t checks = 0;  // total realizability checks
};

/// The full stage-3 loop: localize, then try single-variable partition flips
/// on the core/related propositions (paper V-B bullet 2). Candidates are
/// ranked by how often they occur in the core and related requirements.
[[nodiscard]] RefinementOutcome refine(const std::vector<ltl::Formula>& requirements,
                                       const partition::Partition& initial,
                                       const synth::SynthesisOptions& options = {});

}  // namespace speccc::refine
