#include "refine/refine.hpp"

#include <algorithm>
#include <map>

#include "diag/diag.hpp"
#include "util/diagnostics.hpp"

namespace speccc::refine {

namespace {

using ltl::Formula;

synth::IoSignature signature_from(const partition::Partition& partition) {
  synth::IoSignature sig;
  sig.inputs.assign(partition.inputs.begin(), partition.inputs.end());
  sig.outputs.assign(partition.outputs.begin(), partition.outputs.end());
  return sig;
}

bool realizable(const std::vector<Formula>& formulas,
                const synth::IoSignature& signature,
                const synth::SynthesisOptions& options, std::size_t& checks) {
  ++checks;
  const auto result = synth::synthesize(formulas, signature, options);
  return result.verdict == synth::Realizability::kRealizable;
}

/// The legacy localization: incremental subset growth (add requirements
/// until the subset turns unrealizable -- the last added formula belongs
/// to the core) followed by greedy shrinking. Kept as the difftest
/// cross-check reference for the diag MUS engine.
std::vector<std::size_t> greedy_core(const std::vector<Formula>& requirements,
                                     const synth::IoSignature& signature,
                                     const synth::SynthesisOptions& options,
                                     std::size_t& checks) {
  std::vector<Formula> subset;
  std::vector<std::size_t> subset_indices;
  std::size_t breaker = requirements.size();
  for (std::size_t i = 0; i < requirements.size(); ++i) {
    subset.push_back(requirements[i]);
    subset_indices.push_back(i);
    if (!realizable(subset, signature, options, checks)) {
      breaker = i;
      break;
    }
  }
  speccc_check(breaker < requirements.size(),
               "localize precondition: full specification must be unrealizable");

  // Greedy shrink: drop earlier formulas while the subset stays
  // unrealizable. The breaker always stays.
  std::vector<std::size_t> core = subset_indices;
  for (std::size_t drop = 0; drop < core.size();) {
    if (core[drop] == breaker) {
      ++drop;
      continue;
    }
    std::vector<Formula> trial;
    for (std::size_t k = 0; k < core.size(); ++k) {
      if (k != drop) trial.push_back(requirements[core[k]]);
    }
    if (!realizable(trial, signature, options, checks)) {
      core.erase(core.begin() + static_cast<std::ptrdiff_t>(drop));
    } else {
      ++drop;
    }
  }
  return core;
}

}  // namespace

Localization localize(const std::vector<Formula>& requirements,
                      const synth::IoSignature& signature,
                      const synth::SynthesisOptions& options,
                      const LocalizeOptions& localize_options) {
  Localization out;

  if (localize_options.method == LocalizeOptions::Method::kGreedy) {
    out.core = greedy_core(requirements, signature, options, out.checks);
  } else {
    const diag::CoreOracle oracle =
        diag::synthesis_oracle(requirements, signature, options);
    std::vector<std::size_t> universe(requirements.size());
    for (std::size_t i = 0; i < universe.size(); ++i) universe[i] = i;
    ++out.checks;
    const auto full = oracle(universe);
    speccc_check(full.has_value(),
                 "localize precondition: full specification must be unrealizable");
    out.core = diag::shrink_mus(*full, oracle, out.checks);
  }

  if (localize_options.max_correction_sets > 0) {
    const diag::CoreOracle oracle =
        diag::synthesis_oracle(requirements, signature, options);
    std::vector<std::size_t> universe(requirements.size());
    for (std::size_t i = 0; i < universe.size(); ++i) universe[i] = i;
    out.correction_sets = diag::correction_sets(
        universe, oracle, localize_options.max_correction_sets, out.checks);
  }

  // Filtering step: requirements sharing propositions with the core.
  const std::vector<std::size_t>& core = out.core;
  std::set<std::string> core_props;
  for (std::size_t i : core) {
    const auto atoms = requirements[i].atoms();
    core_props.insert(atoms.begin(), atoms.end());
  }
  for (std::size_t i = 0; i < requirements.size(); ++i) {
    const auto atoms = requirements[i].atoms();
    const bool shares = std::any_of(atoms.begin(), atoms.end(),
                                    [&core_props](const std::string& a) {
                                      return core_props.count(a) > 0;
                                    });
    if (shares) out.related.push_back(i);
  }
  return out;
}

RefinementOutcome refine(const std::vector<Formula>& requirements,
                         const partition::Partition& initial,
                         const synth::SynthesisOptions& options,
                         const LocalizeOptions& localize_options) {
  RefinementOutcome outcome;
  outcome.partition = initial;

  const synth::IoSignature signature = signature_from(initial);
  if (realizable(requirements, signature, options, outcome.checks)) {
    outcome.consistent = true;
    return outcome;
  }

  // Correction sets are deferred to the genuinely-inconsistent exit below:
  // a spec a partition flip rescues never pays for the MaxSAT loop.
  LocalizeOptions mus_only = localize_options;
  mus_only.max_correction_sets = 0;
  outcome.localization = localize(requirements, signature, options, mus_only);
  outcome.checks += outcome.localization.checks;

  // Candidate variables: propositions of the core, ranked by occurrence
  // count over the core and related requirements (most implicated first).
  std::set<std::string> core_props;
  for (std::size_t i : outcome.localization.core) {
    const auto atoms = requirements[i].atoms();
    core_props.insert(atoms.begin(), atoms.end());
  }
  std::map<std::string, std::size_t> occurrence;
  for (std::size_t i : outcome.localization.related) {
    for (const auto& a : requirements[i].atoms()) {
      if (core_props.count(a) > 0) ++occurrence[a];
    }
  }
  std::vector<std::string> candidates(core_props.begin(), core_props.end());
  std::sort(candidates.begin(), candidates.end(),
            [&occurrence](const std::string& a, const std::string& b) {
              const auto ca = occurrence[a];
              const auto cb = occurrence[b];
              return ca != cb ? ca > cb : a < b;
            });

  // Try flipping each candidate (paper V-B bullet 2).
  for (const std::string& variable : candidates) {
    partition::Partition flipped = initial;
    const bool was_input = flipped.is_input(variable);
    if (was_input) {
      flipped.inputs.erase(variable);
      flipped.outputs.insert(variable);
    } else {
      flipped.outputs.erase(variable);
      flipped.inputs.insert(variable);
    }
    if (flipped.inputs.empty()) continue;  // a system needs some input
    if (realizable(requirements, signature_from(flipped), options,
                   outcome.checks)) {
      outcome.consistent = true;
      outcome.adjustment = Adjustment{variable, !was_input};
      outcome.partition = flipped;
      return outcome;
    }
  }

  // No adjustment helps: genuinely inconsistent (paper V-B bullet 3 -- the
  // requirements themselves must be modified). Enumerate the minimal
  // correction sets now, so the diagnosis says which sentence removals
  // would restore consistency.
  outcome.consistent = false;
  if (localize_options.max_correction_sets > 0) {
    const diag::CoreOracle oracle =
        diag::synthesis_oracle(requirements, signature, options);
    std::vector<std::size_t> universe(requirements.size());
    for (std::size_t i = 0; i < universe.size(); ++i) universe[i] = i;
    std::size_t checks = 0;
    outcome.localization.correction_sets = diag::correction_sets(
        universe, oracle, localize_options.max_correction_sets, checks);
    outcome.localization.checks += checks;
    outcome.checks += checks;
  }
  return outcome;
}

}  // namespace speccc::refine
